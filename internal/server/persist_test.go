package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/planstore"
)

// TestPersistentWarmRestart is the warm-start proof at the API level: a
// plan computed before a restart is served as a cache hit after it, with
// zero pipeline computes on the second process.
func TestPersistentWarmRestart(t *testing.T) {
	dir := t.TempDir()
	mkCfg := func() Config {
		return Config{Store: StoreConfig{Dir: dir, Fsync: planstore.FsyncAlways}}
	}

	s1, err := NewServer(mkCfg())
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	ts1 := httptest.NewServer(s1.Handler())
	resp, body := postJSON(t, ts1.Client(), ts1.URL+"/v1/map", synthReq(64))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first serve: status %d: %s", resp.StatusCode, body)
	}
	var mr MapResponse
	if err := json.Unmarshal(body, &mr); err != nil {
		t.Fatal(err)
	}
	if mr.Cached {
		t.Fatal("cold first serve reported cached")
	}
	wantPlan := mr.Plan
	ts1.Close()
	s1.Close() // drains the write-behind queue and closes the log

	s2, err := NewServer(mkCfg())
	if err != nil {
		t.Fatalf("NewServer (restart): %v", err)
	}
	defer s2.Close()
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()

	if warm := metricValue(t, ts2, "cachemapd_planstore_warm_records"); warm < 1 {
		t.Fatalf("warm_records = %v after restart, want >= 1", warm)
	}
	resp, body = postJSON(t, ts2.Client(), ts2.URL+"/v1/map", synthReq(64))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-restart serve: status %d: %s", resp.StatusCode, body)
	}
	var mr2 MapResponse
	if err := json.Unmarshal(body, &mr2); err != nil {
		t.Fatal(err)
	}
	if !mr2.Cached {
		t.Fatal("post-restart serve of a persisted plan was not a cache hit")
	}
	got, _ := json.Marshal(mr2.Plan)
	want, _ := json.Marshal(wantPlan)
	if string(got) != string(want) {
		t.Fatalf("restarted plan differs:\n got %s\nwant %s", got, want)
	}
	if computes := metricValue(t, ts2, "cachemapd_pipeline_computes_total"); computes != 0 {
		t.Fatalf("restart re-ran the pipeline %v times, want 0", computes)
	}
	if skipped := metricValue(t, ts2, "cachemapd_planstore_skipped_records_total"); skipped != 0 {
		t.Fatalf("clean restart skipped %v records", skipped)
	}
}

// TestPersistentDiskHitAfterMemEviction: with a 1-plan in-memory LRU, an
// entry displaced from memory is still served from disk (and promoted
// back) rather than recomputed.
func TestPersistentDiskHitAfterMemEviction(t *testing.T) {
	s, err := NewServer(Config{
		PlanCacheSize: 1,
		Store:         StoreConfig{Dir: t.TempDir()},
	})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/map", synthReq(64)); resp.StatusCode != http.StatusOK {
		t.Fatalf("spec A: status %d: %s", resp.StatusCode, body)
	}
	if resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/map", synthReq(96)); resp.StatusCode != http.StatusOK {
		t.Fatalf("spec B: status %d: %s", resp.StatusCode, body)
	}
	// Spec B displaced spec A from the 1-entry memory front. Make sure
	// both appends have landed before consulting the disk tier.
	s.planWB.Flush()

	resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/map", synthReq(64))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("spec A again: status %d: %s", resp.StatusCode, body)
	}
	var mr MapResponse
	if err := json.Unmarshal(body, &mr); err != nil {
		t.Fatal(err)
	}
	if !mr.Cached {
		t.Fatal("memory-evicted plan recomputed instead of served from disk")
	}
	if hits := metricValue(t, ts, "cachemapd_planstore_disk_hits_total"); hits < 1 {
		t.Fatalf("disk_hits_total = %v, want >= 1", hits)
	}
	if computes := metricValue(t, ts, "cachemapd_pipeline_computes_total"); computes != 2 {
		t.Fatalf("computes_total = %v, want exactly the 2 cold specs", computes)
	}
}

// TestSnapshotEndpoints covers GET|POST /debug/cache/snapshot: 404 without
// a store, stats on GET, flush+compact on POST.
func TestSnapshotEndpoints(t *testing.T) {
	t.Run("NoStore", func(t *testing.T) {
		s := New(Config{})
		defer s.Close()
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()
		resp, err := ts.Client().Get(ts.URL + "/debug/cache/snapshot")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET without a store: status %d, want 404", resp.StatusCode)
		}
		resp, err = ts.Client().Post(ts.URL+"/debug/cache/snapshot", "application/json", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("POST without a store: status %d, want 404", resp.StatusCode)
		}
	})

	t.Run("SnapshotCompacts", func(t *testing.T) {
		dir := t.TempDir()
		s, err := NewServer(Config{Store: StoreConfig{Dir: dir}})
		if err != nil {
			t.Fatalf("NewServer: %v", err)
		}
		defer s.Close()
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()

		if resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/map", synthReq(64)); resp.StatusCode != http.StatusOK {
			t.Fatalf("serve: status %d: %s", resp.StatusCode, body)
		}

		resp, err := ts.Client().Get(ts.URL + "/debug/cache/snapshot")
		if err != nil {
			t.Fatal(err)
		}
		var got snapshotStats
		if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || got.Dir != dir {
			t.Fatalf("GET snapshot: status %d, dir %q", resp.StatusCode, got.Dir)
		}
		if got.Compacted {
			t.Fatal("GET snapshot reported a compaction")
		}

		resp, err = ts.Client().Post(ts.URL+"/debug/cache/snapshot", "application/json", nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("POST snapshot: status %d", resp.StatusCode)
		}
		if !got.Compacted || got.Records < 1 || got.DeadBytes != 0 {
			t.Fatalf("POST snapshot: compacted=%v records=%d dead=%d; want a clean compacted log",
				got.Compacted, got.Records, got.DeadBytes)
		}

		// The snapshot restores through the normal startup scan.
		s.Close()
		ts.Close()
		s2, err := NewServer(Config{Store: StoreConfig{Dir: dir}})
		if err != nil {
			t.Fatalf("NewServer on snapshot: %v", err)
		}
		defer s2.Close()
		if got := s2.planLog.Stats(); got.WarmRecords < 1 || got.SkippedRecords != 0 {
			t.Fatalf("snapshot restore: warm=%d skipped=%d", got.WarmRecords, got.SkippedRecords)
		}
	})
}
