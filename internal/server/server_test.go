package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/mapping"
	"repro/internal/workloads"
)

func synthReq(extent int64) MapRequest {
	return MapRequest{
		Workload: WorkloadSpec{Synth: &workloads.SynthSpec{
			Name:    "t",
			Passes:  2,
			Extent:  extent,
			Streams: []workloads.StreamSpec{{Stride: 1}},
		}},
		Topology: "1/2/4@16,8,4",
	}
}

func postJSON(t *testing.T, client *http.Client, url string, body any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func TestMapEndpoint(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/map", synthReq(128))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var mr MapResponse
	if err := json.Unmarshal(body, &mr); err != nil {
		t.Fatal(err)
	}
	if mr.Plan.Schema != mapping.PlanSchemaVersion {
		t.Fatalf("schema = %d", mr.Plan.Schema)
	}
	if mr.Plan.Clients != 4 {
		t.Fatalf("clients = %d", mr.Plan.Clients)
	}
	if mr.Plan.TotalIterations != 2*128 {
		t.Fatalf("iterations = %d", mr.Plan.TotalIterations)
	}
	if mr.Cached {
		t.Fatal("first request reported cached")
	}
	if len(mr.CacheKey) != 64 {
		t.Fatalf("cache key %q", mr.CacheKey)
	}
	if len(mr.Stages) == 0 {
		t.Fatal("map response carries no stage breakdown")
	}
	stages := make(map[string]bool)
	for _, st := range mr.Stages {
		stages[st.Stage] = true
	}
	if !stages["cluster"] || !stages["encode"] {
		t.Fatalf("stage breakdown missing cluster/encode: %+v", mr.Stages)
	}

	// The identical spec is a cache hit, even spelled with explicit
	// defaults (normalization canonicalizes before hashing).
	req2 := synthReq(128)
	req2.Scheme = "inter"
	req2.BalanceThreshold = 0.10
	req2.DepMode = "ignore"
	resp, body = postJSON(t, ts.Client(), ts.URL+"/v1/map", req2)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var mr2 MapResponse
	if err := json.Unmarshal(body, &mr2); err != nil {
		t.Fatal(err)
	}
	if !mr2.Cached {
		t.Fatal("identical spec missed the plan cache")
	}
	if mr2.CacheKey != mr.CacheKey {
		t.Fatalf("cache keys differ: %s vs %s", mr2.CacheKey, mr.CacheKey)
	}

	// A different scheme is a different plan.
	req3 := synthReq(128)
	req3.Scheme = "original"
	resp, body = postJSON(t, ts.Client(), ts.URL+"/v1/map", req3)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var mr3 MapResponse
	if err := json.Unmarshal(body, &mr3); err != nil {
		t.Fatal(err)
	}
	if mr3.Cached || mr3.CacheKey == mr.CacheKey {
		t.Fatal("different scheme shared a cache entry")
	}
}

func TestMapEndpointErrors(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cases := []struct {
		name string
		body string
		want int
	}{
		{"not json", `{`, http.StatusBadRequest},
		{"unknown field", `{"workload":{"app":"apsi"},"topology":"1/2/4","shceme":"inter"}`, http.StatusBadRequest},
		{"no workload", `{"topology":"1/2/4"}`, http.StatusBadRequest},
		{"two workloads", `{"workload":{"app":"apsi","synth":{"Passes":1,"Extent":1,"Streams":[{"Stride":1}]}},"topology":"1/2/4"}`, http.StatusBadRequest},
		{"unknown app", `{"workload":{"app":"nosuch"},"topology":"1/2/4"}`, http.StatusBadRequest},
		{"bad topology", `{"workload":{"app":"apsi"},"topology":"4/2"}`, http.StatusBadRequest},
		{"missing topology", `{"workload":{"app":"apsi"}}`, http.StatusBadRequest},
		{"bad scheme", `{"workload":{"app":"apsi"},"topology":"1/2/4","scheme":"nosuch"}`, http.StatusBadRequest},
		{"bad dep mode", `{"workload":{"app":"apsi"},"topology":"1/2/4","dep_mode":"nosuch"}`, http.StatusBadRequest},
		{"bad threshold", `{"workload":{"app":"apsi"},"topology":"1/2/4","balance_threshold":2}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp, err := ts.Client().Post(ts.URL+"/v1/map", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, resp.StatusCode, tc.want, body)
		}
		var er errorResponse
		if err := json.Unmarshal(body, &er); err != nil || er.Error == "" {
			t.Errorf("%s: error envelope missing: %s", tc.name, body)
		}
	}

	// Wrong method.
	resp, err := ts.Client().Get(ts.URL + "/v1/map")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/map: status %d, want 405", resp.StatusCode)
	}
}

func TestSimulateEndpoint(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req := SimRequest{MapRequest: synthReq(256)}
	resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/simulate", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var sr SimResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Scheme != "inter" {
		t.Fatalf("scheme = %q", sr.Scheme)
	}
	if len(sr.MissRates) != 3 {
		t.Fatalf("miss rates = %v, want 3 levels", sr.MissRates)
	}
	if sr.Iterations != 2*256 {
		t.Fatalf("iterations = %d", sr.Iterations)
	}
	if sr.DiskReads <= 0 {
		t.Fatalf("disk reads = %d", sr.DiskReads)
	}
	if sr.Cached {
		t.Fatal("first simulate reported a plan cache hit")
	}

	// The simulation reuses the plan cache: a /v1/map for the same spec is
	// served from the plan the simulation computed.
	resp, body = postJSON(t, ts.Client(), ts.URL+"/v1/map", synthReq(256))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var mr MapResponse
	if err := json.Unmarshal(body, &mr); err != nil {
		t.Fatal(err)
	}
	if !mr.Cached {
		t.Fatal("map after simulate missed the plan cache")
	}

	// Simulator knob validation.
	bad := SimRequest{MapRequest: synthReq(256), Policy: "nosuch"}
	resp, _ = postJSON(t, ts.Client(), ts.URL+"/v1/simulate", bad)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad policy: status %d", resp.StatusCode)
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var hz healthzResponse
	if err := json.Unmarshal(body, &hz); err != nil {
		t.Fatalf("healthz is not JSON: %v: %q", err, body)
	}
	if resp.StatusCode != http.StatusOK || hz.Status != "ok" {
		t.Fatalf("healthz: %d %q", resp.StatusCode, body)
	}
	if hz.Admission.Limit != s.cfg.AdmissionQueueDepth || hz.Admission.Workers != s.cfg.Workers {
		t.Fatalf("healthz admission block = %+v", hz.Admission)
	}
	if hz.Ring != nil {
		t.Fatalf("unclustered server reported a ring: %+v", hz.Ring)
	}

	// Drive one miss and one hit, then check the exposition.
	postJSON(t, ts.Client(), ts.URL+"/v1/map", synthReq(64))
	postJSON(t, ts.Client(), ts.URL+"/v1/map", synthReq(64))

	resp, err = ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	out := string(body)
	for _, want := range []string{
		"cachemapd_requests_total 2",
		"cachemapd_map_requests_total 2",
		"cachemapd_in_flight_requests 0",
		"cachemapd_plan_cache_hits_total 1",
		"cachemapd_plan_cache_misses_total 1",
		"cachemapd_pipeline_computes_total 1",
		"# TYPE cachemapd_clustering_duration_seconds histogram",
		"cachemapd_clustering_duration_seconds_count 1",
		"cachemapd_request_duration_seconds_count",
		"# TYPE cachemapd_stage_duration_seconds histogram",
		`cachemapd_stage_duration_seconds_count{stage="cluster"} 1`,
		`cachemapd_stage_duration_seconds_count{stage="encode"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q:\n%s", want, out)
		}
	}

	// The sparse similarity engine's counters: the one cold mapping must
	// report a dense bound, and generated pairs can never exceed it. (A
	// strided synth stream never revisits data, so its tags are pairwise
	// disjoint and zero generated pairs is the correct count here; the
	// core and pipeline suites cover the overlapping-workload case.)
	counter := func(name string) int64 {
		for _, line := range strings.Split(out, "\n") {
			if rest, ok := strings.CutPrefix(line, name+" "); ok {
				v, err := strconv.ParseInt(strings.TrimSpace(rest), 10, 64)
				if err != nil {
					t.Fatalf("parse %s: %v", name, err)
				}
				return v
			}
		}
		t.Fatalf("metrics missing %q:\n%s", name, out)
		return 0
	}
	gen := counter("cachemapd_similarity_pairs_generated")
	dense := counter("cachemapd_similarity_pairs_dense_bound")
	if dense <= 0 || gen < 0 || gen > dense {
		t.Errorf("pair counters generated=%d dense=%d, want 0 <= generated <= dense", gen, dense)
	}
}

// TestConcurrentMapRequests drives 64 concurrent mixed-spec requests — the
// acceptance bar for the daemon — and requires zero errors.
func TestConcurrentMapRequests(t *testing.T) {
	s := New(Config{Workers: 4, PlanCacheSize: 64})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	ts.Client().Transport.(*http.Transport).MaxConnsPerHost = 0

	const n = 64
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := synthReq(int64(64 + 16*(i%8))) // 8 distinct specs, hot reuse
			if i%3 == 0 {
				req.Scheme = "original"
			}
			b, _ := json.Marshal(req)
			resp, err := ts.Client().Post(ts.URL+"/v1/map", "application/json", bytes.NewReader(b))
			if err != nil {
				errs <- err
				return
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("status %d: %s", resp.StatusCode, body)
				return
			}
			var mr MapResponse
			if err := json.Unmarshal(body, &mr); err != nil {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	hits, misses := s.cache.Stats()
	if misses > 16 { // 8 specs × 2 schemes at most
		t.Errorf("misses = %d, want <= 16", misses)
	}
	if hits+misses != n {
		t.Errorf("hits+misses = %d, want %d", hits+misses, n)
	}
}

// TestQueueBusy503 fills the worker pool and requires queued requests to
// fail fast with 503 when the deadline expires before admission.
func TestQueueBusy503(t *testing.T) {
	block := make(chan struct{})
	s := New(Config{Workers: 1, RequestTimeout: 200 * time.Millisecond})
	started := make(chan struct{}, 8)
	s.onJobStart = func() {
		started <- struct{}{}
		<-block
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Occupy the only worker.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		postJSON(t, ts.Client(), ts.URL+"/v1/map", synthReq(4096))
	}()
	<-started

	// This one can never be admitted before its deadline.
	resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/map", synthReq(8192))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503: %s", resp.StatusCode, body)
	}

	close(block)
	wg.Wait()
}

// TestGracefulShutdownDrains starts a real http.Server, parks a request
// mid-computation, issues Shutdown (what cachemapd does on SIGTERM), and
// requires the in-flight request to complete successfully before Shutdown
// returns.
func TestGracefulShutdownDrains(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 1)
	s := New(Config{Workers: 2})
	s.onJobStart = func() {
		select {
		case started <- struct{}{}:
		default:
		}
		<-release
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: s.Handler()}
	serveDone := make(chan error, 1)
	go func() { serveDone <- hs.Serve(ln) }()

	url := "http://" + ln.Addr().String()
	type result struct {
		status int
		body   []byte
		err    error
	}
	reqDone := make(chan result, 1)
	go func() {
		b, _ := json.Marshal(synthReq(512))
		resp, err := http.Post(url+"/v1/map", "application/json", bytes.NewReader(b))
		if err != nil {
			reqDone <- result{err: err}
			return
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		reqDone <- result{status: resp.StatusCode, body: body}
	}()
	<-started // the request is admitted and computing

	shutDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutDone <- hs.Shutdown(ctx)
	}()

	// New connections are refused while draining.
	time.Sleep(20 * time.Millisecond)
	select {
	case res := <-reqDone:
		t.Fatalf("in-flight request finished before release: %+v", res)
	case err := <-shutDone:
		t.Fatalf("shutdown returned before drain: %v", err)
	default:
	}

	close(release) // let the parked job finish

	res := <-reqDone
	if res.err != nil {
		t.Fatalf("in-flight request failed: %v", res.err)
	}
	if res.status != http.StatusOK {
		t.Fatalf("in-flight request status %d: %s", res.status, res.body)
	}
	var mr MapResponse
	if err := json.Unmarshal(res.body, &mr); err != nil {
		t.Fatal(err)
	}
	if mr.Plan.TotalIterations != 2*512 {
		t.Fatalf("drained plan iterations = %d", mr.Plan.TotalIterations)
	}
	if err := <-shutDone; err != nil {
		t.Fatalf("shutdown error: %v", err)
	}
	if err := <-serveDone; err != http.ErrServerClosed {
		t.Fatalf("serve returned %v", err)
	}
}

func TestComputePlanInProcess(t *testing.T) {
	s := New(Config{})
	mr, err := s.ComputePlan(synthReq(128))
	if err != nil {
		t.Fatal(err)
	}
	if mr.Plan.Clients != 4 || mr.Cached {
		t.Fatalf("plan = %+v", mr)
	}
	mr2, err := s.ComputePlan(synthReq(128))
	if err != nil {
		t.Fatal(err)
	}
	if !mr2.Cached {
		t.Fatal("second in-process compute missed the cache")
	}
	asg, err := mr.Plan.Assignment()
	if err != nil {
		t.Fatal(err)
	}
	if asg.TotalIterations() != 256 {
		t.Fatalf("decoded iterations = %d", asg.TotalIterations())
	}
}

// TestTimeoutReleasesWorkers is the regression test for the detached-worker
// leak: a request that overruns its deadline must cancel its computation
// cooperatively and free the worker, so 50 timed-out requests leave the
// goroutine count where it started instead of stranding 50 clustering jobs.
func TestTimeoutReleasesWorkers(t *testing.T) {
	s := New(Config{Workers: 50, RequestTimeout: 20 * time.Millisecond})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	before := runtime.NumGoroutine()
	timeouts := 0
	for i := 0; i < 50; i++ {
		// Distinct specs: every request computes cold. The extent is sized
		// so the mapping outruns the 20ms deadline even with the sparse
		// similarity engine (the tag stage alone scans ~1.6M iterations).
		req := synthReq(int64(800000 + i))
		resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/map", req)
		switch resp.StatusCode {
		case http.StatusGatewayTimeout:
			timeouts++
		case http.StatusOK, http.StatusServiceUnavailable:
		default:
			t.Fatalf("request %d: status %d: %s", i, resp.StatusCode, body)
		}
	}
	if timeouts < 40 {
		t.Fatalf("only %d/50 requests timed out; the workload no longer outruns the deadline", timeouts)
	}

	// The canceled computations must wind down promptly; allow generous
	// slack for idle net/http machinery.
	const slack = 10
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before+slack {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines grew from %d to %d after 50 timed-out requests",
				before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
