package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/metrics"
)

// testRing boots n in-process servers joined into one ring. Each server
// gets its own registry so per-node counters stay distinguishable.
type testRing struct {
	addrs   []string
	servers []*Server
	https   []*httptest.Server
}

func newTestRing(t *testing.T, n int, mutate func(i int, cfg *Config)) *testRing {
	t.Helper()
	r := &testRing{}
	// Unstarted servers hand out their listen address before serving, so
	// every node can know the full peer list up front.
	for i := 0; i < n; i++ {
		ts := httptest.NewUnstartedServer(nil)
		r.https = append(r.https, ts)
		r.addrs = append(r.addrs, ts.Listener.Addr().String())
	}
	for i := 0; i < n; i++ {
		node, err := cluster.New(cluster.Config{
			Self:        r.addrs[i],
			Peers:       r.addrs,
			FillTimeout: 5 * time.Second,
			Registry:    metrics.NewRegistry(),
		})
		if err != nil {
			t.Fatal(err)
		}
		cfg := Config{Cluster: node, Workers: 4}
		if mutate != nil {
			mutate(i, &cfg)
		}
		s := New(cfg)
		r.servers = append(r.servers, s)
		r.https[i].Config.Handler = s.Handler()
		r.https[i].Start()
	}
	t.Cleanup(func() {
		for _, ts := range r.https {
			ts.Close()
		}
	})
	return r
}

// ownerOf resolves the ring index owning req's plan key.
func (r *testRing) ownerOf(t *testing.T, req MapRequest) int {
	t.Helper()
	key, err := PlanKey(req)
	if err != nil {
		t.Fatal(err)
	}
	owner, _ := r.servers[0].cluster.Owner(key)
	for i, a := range r.addrs {
		if a == owner {
			return i
		}
	}
	t.Fatalf("owner %q not in ring %v", owner, r.addrs)
	return -1
}

func (r *testRing) post(t *testing.T, i int, req MapRequest) (*http.Response, MapResponse, []byte) {
	t.Helper()
	b, _ := json.Marshal(req)
	resp, err := http.Post(r.https[i].URL+"/v1/map", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var mr MapResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(body, &mr); err != nil {
			t.Fatalf("decoding %s: %v", body, err)
		}
	}
	return resp, mr, body
}

// computesOf reads one node's cachemapd_pipeline_computes_total.
func computesOf(s *Server) int64 { return s.computes.Value() }

func TestClusterPeerFill(t *testing.T) {
	r := newTestRing(t, 3, nil)
	req := synthReq(96)
	owner := r.ownerOf(t, req)
	requester := (owner + 1) % 3

	resp, mr, body := r.post(t, requester, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if mr.FilledFrom != r.addrs[owner] {
		t.Fatalf("filled_from = %q, want owner %q", mr.FilledFrom, r.addrs[owner])
	}
	if mr.Cached {
		t.Fatal("first fill reported cached=true on the requester")
	}
	if got := computesOf(r.servers[owner]); got != 1 {
		t.Fatalf("owner ran %d computes, want 1", got)
	}
	if got := computesOf(r.servers[requester]); got != 0 {
		t.Fatalf("requester computed locally (%d) despite a live owner", got)
	}

	// The owner served it from its own pipeline, so its copy is local.
	respO, mrO, bodyO := r.post(t, owner, req)
	if respO.StatusCode != http.StatusOK || !mrO.Cached || mrO.FilledFrom != "" {
		t.Fatalf("owner self-serve: %d cached=%v filled_from=%q: %s",
			respO.StatusCode, mrO.Cached, mrO.FilledFrom, bodyO)
	}

	// Acceptance: plan bytes identical whether peer-filled or served by
	// the owner, and a third replica's fill matches too.
	planFilled, _ := json.Marshal(mr.Plan)
	planOwner, _ := json.Marshal(mrO.Plan)
	if !bytes.Equal(planFilled, planOwner) {
		t.Fatalf("peer-filled plan differs from the owner's:\n%s\nvs\n%s", planFilled, planOwner)
	}
	_, mr3, _ := r.post(t, (owner+2)%3, req)
	plan3, _ := json.Marshal(mr3.Plan)
	if !bytes.Equal(planFilled, plan3) || mr3.CacheKey != mr.CacheKey {
		t.Fatalf("third node's plan diverged: key %q vs %q", mr3.CacheKey, mr.CacheKey)
	}

	// Second request on the requester: local cache hit, provenance kept.
	_, mr2, _ := r.post(t, requester, req)
	if !mr2.Cached || mr2.FilledFrom != r.addrs[owner] {
		t.Fatalf("refetch: cached=%v filled_from=%q", mr2.Cached, mr2.FilledFrom)
	}
	if got := computesOf(r.servers[owner]); got != 1 {
		t.Fatalf("owner recomputed: %d computes", got)
	}
}

func TestClusterSingleflightFleetWide(t *testing.T) {
	// A slow-enough pipeline job hit concurrently through all three nodes
	// must run exactly once fleet-wide: each node's local singleflight
	// collapses its own callers, the two non-owners fill from the owner,
	// and the owner's singleflight collapses those fills with its own.
	started := make(chan struct{})
	var once sync.Once
	r := newTestRing(t, 3, func(i int, cfg *Config) {
		cfg.RequestTimeout = 60 * time.Second
	})
	req := synthReq(2048) // big enough that the computation overlaps the burst
	owner := r.ownerOf(t, req)
	r.servers[owner].onJobStart = func() { once.Do(func() { close(started) }) }

	const perNode = 4
	var wg sync.WaitGroup
	errs := make(chan string, 3*perNode)
	for i := 0; i < 3; i++ {
		for c := 0; c < perNode; c++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				resp, _, body := r.post(t, i, req)
				if resp.StatusCode != http.StatusOK {
					errs <- string(body)
				}
			}(i)
		}
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatalf("burst request failed: %s", e)
	}
	select {
	case <-started:
	default:
		t.Fatal("owner never started a pipeline job")
	}
	var total int64
	for i, s := range r.servers {
		n := computesOf(s)
		total += n
		if i != owner && n != 0 {
			t.Errorf("non-owner %d computed %d times", i, n)
		}
	}
	if total != 1 {
		t.Fatalf("fleet ran %d pipeline computes for one key, want exactly 1", total)
	}
}

func TestClusterOwnerDownFallsBackToLocalCompute(t *testing.T) {
	r := newTestRing(t, 3, nil)
	req := synthReq(128)
	owner := r.ownerOf(t, req)
	requester := (owner + 1) % 3

	// Kill the owner before anyone has the plan.
	r.https[owner].Close()

	resp, mr, body := r.post(t, requester, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("dead owner: status %d: %s", resp.StatusCode, body)
	}
	if mr.FilledFrom != "" || mr.Degraded != "" {
		t.Fatalf("local fallback mislabeled: filled_from=%q degraded=%q", mr.FilledFrom, mr.Degraded)
	}
	if got := computesOf(r.servers[requester]); got != 1 {
		t.Fatalf("requester computes = %d, want 1 (local fallback)", got)
	}

	// The failed fetch must be visible in peer health.
	var down bool
	for _, ps := range r.servers[requester].cluster.Health() {
		if ps.Addr == r.addrs[owner] && ps.State == "down" && ps.LastError != "" {
			down = true
		}
	}
	if !down {
		t.Fatalf("owner not marked down in health: %+v", r.servers[requester].cluster.Health())
	}
}

func TestClusterInternalPlanEndpoint(t *testing.T) {
	r := newTestRing(t, 3, nil)
	req := synthReq(64)
	key, err := PlanKey(req)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := json.Marshal(req)

	// Any node serves the internal protocol for any key it is asked for.
	resp, err := http.Post(r.https[0].URL+"/internal/plan/"+key.String(), "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("internal fill: %d: %s", resp.StatusCode, body)
	}
	var fr fillResponse
	if err := json.Unmarshal(body, &fr); err != nil {
		t.Fatal(err)
	}
	if fr.CacheKey != key.String() || fr.Node != r.addrs[0] || fr.Cached {
		t.Fatalf("fill response = key %q node %q cached %v", fr.CacheKey, fr.Node, fr.Cached)
	}

	// A path key that does not match the body is a protocol-skew guard.
	wrong := strings.Repeat("0", 64)
	resp, err = http.Post(r.https[0].URL+"/internal/plan/"+wrong, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("key mismatch accepted: %d", resp.StatusCode)
	}

	// Unclustered servers refuse the protocol outright.
	solo := httptest.NewServer(New(Config{}).Handler())
	defer solo.Close()
	resp, err = http.Post(solo.URL+"/internal/plan/"+key.String(), "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unclustered internal fill: %d, want 404", resp.StatusCode)
	}
}

func TestClusterFillReplicatesStaleTier(t *testing.T) {
	// A peer fill must land in the requester's stale tier so the requester
	// can serve the workload degraded once the owner is gone.
	r := newTestRing(t, 3, func(i int, cfg *Config) {
		cfg.Degraded = DegradedConfig{Enabled: true}
	})
	req := synthReq(96)
	owner := r.ownerOf(t, req)
	requester := (owner + 1) % 3

	if resp, mr, body := r.post(t, requester, req); resp.StatusCode != http.StatusOK || mr.FilledFrom == "" {
		t.Fatalf("priming fill failed: %d %s", resp.StatusCode, body)
	}
	if n := r.servers[requester].stale.Len(); n != 1 {
		t.Fatalf("requester stale tier holds %d entries after a fill, want 1", n)
	}
}

func TestClusterHealthzReportsRing(t *testing.T) {
	r := newTestRing(t, 3, nil)
	resp, err := http.Get(r.https[0].URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var hz healthzResponse
	if err := json.Unmarshal(body, &hz); err != nil {
		t.Fatalf("healthz: %v: %s", err, body)
	}
	if hz.Ring == nil || hz.Ring.Self != r.addrs[0] || hz.Ring.Size != 3 || len(hz.Ring.Peers) != 3 {
		t.Fatalf("ring health block = %s", body)
	}
	if hz.Ring.Peers[0].State != "self" {
		t.Fatalf("first peer status should be self: %+v", hz.Ring.Peers)
	}
}
