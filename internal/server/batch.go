package server

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/plancache"
)

// maxBatchSpecs bounds one batch request. Large fleets should split their
// spec streams; an unbounded batch would let one request monopolize the
// admission budget arbitrarily.
const maxBatchSpecs = 256

// BatchMapRequest is the body of `POST /v1/map/batch`: many mapping specs
// resolved as one admission unit. Specs are grouped by workload family —
// identical requests up to topology — and each family runs the expensive
// pipeline prefix (tags, dependence analysis, similarity, clustering) at
// most once: the family's first spec computes in full, the rest repair its
// clustering for their own topologies (balance + schedule only), provided
// their drift stays within the repair tolerance.
type BatchMapRequest struct {
	Requests []MapRequest `json:"requests"`
}

// BatchResult is one spec's outcome inside a batch response: either an
// embedded map response or an error. Per-spec failures do not fail the
// batch; a batch-level failure (malformed body, shed, deadline) fails the
// whole request instead.
type BatchResult struct {
	*MapResponse
	Error string `json:"error,omitempty"`
}

// BatchMapResponse is the body returned by `POST /v1/map/batch`. Results
// are index-aligned with the request's specs.
type BatchMapResponse struct {
	Results []BatchResult `json:"results"`
	// Families is the number of distinct workload families in the batch.
	Families int `json:"families"`
	// Full / Incremental / CachedN / Errors summarize the outcome mix:
	// full pipeline runs, incremental repairs, plan-cache hits and
	// per-spec failures.
	Full        int `json:"full"`
	Incremental int `json:"incremental"`
	CachedN     int `json:"cached"`
	Errors      int `json:"errors"`
	// ElapsedMS is the server-side time for the whole batch.
	ElapsedMS float64 `json:"elapsed_ms"`
}

// handleBatch serves POST /v1/map/batch.
//
// Admission: the batch enqueues once with the aggregate cost of all its
// specs (Σ iterations × topology size) and holds a single worker slot for
// its whole run — N specs cost one queue spot but their true summed weight,
// so a fat batch sheds exactly like N fat singles would. A shed batch gets
// one 429 with a per-batch Retry-After and has touched no worker. Degraded
// serving does not apply to batches; callers needing per-spec degradation
// retry the failed specs individually.
//
// Within the held slot, each family's leader resolves first (cache hit,
// peer fill or full compute — seeding the stale tier with its clustering),
// then its siblings fan out on goroutines bounded by the worker count,
// repairing the leader's clustering for their own topologies.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	s.reqBatch.Inc()
	s.serve(w, r, func(ctx context.Context, body []byte) (any, error) {
		var req BatchMapRequest
		if err := decodeStrict(body, &req); err != nil {
			return nil, badRequest(err)
		}
		if len(req.Requests) == 0 {
			return nil, badRequest(fmt.Errorf("batch: no requests"))
		}
		if len(req.Requests) > maxBatchSpecs {
			return nil, badRequest(fmt.Errorf("batch: %d requests exceed the limit of %d", len(req.Requests), maxBatchSpecs))
		}
		jobs := make([]*job, len(req.Requests))
		var aggCost int64
		for i, mr := range req.Requests {
			j, err := buildJob(mr)
			if err != nil {
				return nil, badRequest(fmt.Errorf("requests[%d]: %w", i, err))
			}
			jobs[i] = j
			aggCost += j.cost
		}
		s.batchSpecs.Add(int64(len(jobs)))
		start := time.Now()
		return runJob(s, ctx, aggCost, func(ctx context.Context) (*BatchMapResponse, error) {
			return s.runBatch(ctx, jobs, start)
		})
	})
}

// runBatch resolves the batch's jobs family by family on the worker slot
// the batch already holds. It only fails outright on batch-level context
// expiry; per-spec errors land in their result slots.
func (s *Server) runBatch(ctx context.Context, jobs []*job, start time.Time) (*BatchMapResponse, error) {
	// Group by workload family (the workload-only content key), keeping
	// first-appearance order for determinism.
	groups := make(map[plancache.Key][]int, len(jobs))
	var order []plancache.Key
	for i, j := range jobs {
		if _, ok := groups[j.wkKey]; !ok {
			order = append(order, j.wkKey)
		}
		groups[j.wkKey] = append(groups[j.wkKey], i)
	}

	results := make([]BatchResult, len(jobs))
	fanout := s.cfg.Workers
	if fanout < 1 {
		fanout = 1
	}
	sem := make(chan struct{}, fanout)
	for _, k := range order {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		idxs := groups[k]
		// The family leader resolves synchronously: its compute (or cache
		// hit) deposits the family's clustering in the stale tier, which is
		// what the siblings repair from.
		leader := idxs[0]
		results[leader] = s.batchEntry(ctx, jobs[leader], s.cfg.Repair.Enabled)
		var wg sync.WaitGroup
		for _, i := range idxs[1:] {
			wg.Add(1)
			sem <- struct{}{}
			go func(i int) {
				defer wg.Done()
				defer func() { <-sem }()
				results[i] = s.batchEntry(ctx, jobs[i], true)
			}(i)
		}
		wg.Wait()
	}

	resp := &BatchMapResponse{
		Results:   results,
		Families:  len(order),
		ElapsedMS: float64(time.Since(start)) / float64(time.Millisecond),
	}
	for _, r := range results {
		switch {
		case r.Error != "":
			resp.Errors++
		case r.Cached:
			resp.CachedN++
		case r.Replanned == ReplanIncremental:
			resp.Incremental++
		default:
			resp.Full++
		}
	}
	return resp, nil
}

// batchEntry resolves one spec of a batch through the plan cache, with the
// repair path enabled per the caller (always for family siblings; for
// leaders only when the server-wide repair fast-path is on).
func (s *Server) batchEntry(ctx context.Context, j *job, repair bool) BatchResult {
	t0 := time.Now()
	out, key, hit, err := s.computePlan(ctx, j, computeOpts{repair: repair})
	if err != nil {
		return BatchResult{Error: err.Error()}
	}
	return BatchResult{MapResponse: &MapResponse{
		Plan:         out.Plan,
		Stages:       out.Stages,
		CacheKey:     key.String(),
		Cached:       hit,
		FilledFrom:   out.FilledFrom,
		Replanned:    out.Replanned,
		ReusedStages: out.ReusedStages,
		ElapsedMS:    float64(time.Since(t0)) / float64(time.Millisecond),
	}}
}
