package server

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// admission is the bounded queue in front of the worker pool. Requests
// that find every worker busy wait here for a slot; arrivals beyond the
// queue's depth — or beyond its summed cost budget — are shed immediately
// with 429, so a burst of cache-missing work degrades into fast rejections
// instead of an unbounded pile of blocked goroutines.
//
// Cost is the request's work estimate (iteration count × topology size),
// so one queue slot of a huge clustering job weighs more than one slot of
// a trivial one: the cost bound sheds early when the queue holds few but
// expensive requests. An empty queue always accepts one waiter regardless
// of its cost — otherwise a single over-budget request could never run.
type admission struct {
	depth   int
	maxCost int64

	mu         sync.Mutex
	queued     int
	queuedCost int64
}

// tryEnqueue reserves a queue slot for a request of the given cost,
// reporting false when the queue is saturated.
func (a *admission) tryEnqueue(cost int64) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.queued >= a.depth {
		return false
	}
	if a.maxCost > 0 && a.queued > 0 && a.queuedCost+cost > a.maxCost {
		return false
	}
	a.queued++
	a.queuedCost += cost
	return true
}

// dequeue releases a reserved slot (whether the request was admitted to a
// worker or gave up waiting).
func (a *admission) dequeue(cost int64) {
	a.mu.Lock()
	a.queued--
	a.queuedCost -= cost
	a.mu.Unlock()
}

// snapshot returns the current queue occupancy.
func (a *admission) snapshot() (queued int, cost int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.queued, a.queuedCost
}

// shedError is the 429 outcome: the admission queue was full. retryAfter
// is the backoff hint for the Retry-After header.
type shedError struct {
	retryAfter time.Duration
}

func (e *shedError) Error() string {
	return fmt.Sprintf("admission queue full; retry after %s", e.retryAfter)
}

// seconds renders the hint for the Retry-After header (whole seconds,
// rounded up, at least 1).
func (e *shedError) seconds() int {
	s := int(math.Ceil(e.retryAfter.Seconds()))
	if s < 1 {
		s = 1
	}
	return s
}

// jobClock tracks an exponentially weighted moving average of job wall
// times, feeding the Retry-After estimate: with q requests queued ahead
// over w workers, a shed caller should come back after roughly
// ewma × (q+1) / w.
type jobClock struct {
	bits atomic.Uint64 // float64 seconds
}

func (c *jobClock) observe(d time.Duration) {
	s := d.Seconds()
	for {
		old := c.bits.Load()
		prev := math.Float64frombits(old)
		next := s
		if old != 0 {
			next = 0.8*prev + 0.2*s
		}
		if c.bits.CompareAndSwap(old, math.Float64bits(next)) {
			return
		}
	}
}

func (c *jobClock) ewma() time.Duration {
	return time.Duration(math.Float64frombits(c.bits.Load()) * float64(time.Second))
}

// retryAfter estimates the backoff for a shed request, clamped to
// [1s, 60s].
func (s *Server) retryAfter() time.Duration {
	queued, _ := s.adm.snapshot()
	per := s.jobs.ewma()
	if per <= 0 {
		per = time.Second
	}
	est := time.Duration(float64(per) * float64(queued+1) / float64(s.cfg.Workers))
	if est < time.Second {
		est = time.Second
	}
	if est > time.Minute {
		est = time.Minute
	}
	return est
}
