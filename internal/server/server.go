// Package server turns the mapper into a long-running service: a stdlib
// net/http JSON API that computes hierarchy-aware mappings on demand,
// memoizes them in a content-addressed plan cache, runs the I/O simulator
// against computed plans, and exposes its own operational metrics.
//
// Endpoints:
//
//	POST /v1/map            compute (or fetch) the plan for a workload+topology+scheme spec
//	POST /v1/simulate       run the iosim against the plan and report per-level miss rates
//	POST /internal/plan/{key} peer-fill protocol between ring members (see cluster.go)
//	GET  /healthz           liveness + admission-queue and ring health, as JSON
//	GET  /metrics           Prometheus text exposition
//	GET  /debug/traces      recent request traces as JSON (?min_ms= filters by duration)
//	GET  /debug/traces/{id} one trace in Chrome trace_event format (chrome://tracing, Perfetto)
//
// Observability: every API request runs under a root span (ingesting a
// W3C `traceparent` header when present, minting a trace ID otherwise)
// whose ID is echoed in the `X-Trace-Id` response header; the plan cache,
// pipeline stages and simulator record child spans, and completed traces
// land in a bounded ring buffer served by /debug/traces. When a Logger is
// configured, every request is access-logged, and requests slower than
// SlowRequestThreshold additionally log their per-span breakdown.
//
// Concurrency model: decoding and validation run on the connection's
// goroutine; the mapping computation itself is admitted through a bounded
// worker pool so that a burst of expensive clustering jobs cannot
// oversubscribe the machine. Every request carries a deadline; requests
// that cannot be admitted before it expires fail fast with 503, admitted
// jobs that overrun it return 504 and the pipeline observes the canceled
// context cooperatively, stopping the computation within one stage
// boundary or check interval — no worker goroutine outlives its request.
//
// Overload hardening: in front of the worker pool sits a bounded
// admission queue (depth and summed-cost limits; cost ≈ iteration count ×
// topology size). Requests the queue cannot hold are shed immediately
// with 429 and a Retry-After hint — a shed request never blocks and never
// touches a worker. With degraded serving enabled, overload-path failures
// (shed, admission timeout, deadline overrun, injected fault) are instead
// answered with a stale-but-valid plan from the plan cache's stale tier
// (same workload, topology drift within tolerance) or the cheap
// lexicographic fallback mapping, the degradation mode marked in the
// response, the request span, and cachemapd_degraded_responses_total. A
// faults.Injector (see -faults / GET+POST /debug/faults) deterministically
// injects latency spikes, pipeline-stage errors and plan-cache leader
// crashes to prove those paths under chaos load.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/faults"
	"repro/internal/iosim"
	"repro/internal/mapping"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/plancache"
	"repro/internal/planstore"
	"repro/internal/quality"
)

// Config parameterizes the service.
type Config struct {
	// Workers bounds concurrently executing mapping/simulation jobs
	// (default: GOMAXPROCS).
	Workers int
	// PlanCacheSize bounds the plan cache, in plans (default 512).
	PlanCacheSize int
	// RequestTimeout is the per-request deadline, covering both queueing
	// and computation (default 30s).
	RequestTimeout time.Duration
	// MaxBodyBytes bounds request bodies (default 1 MiB).
	MaxBodyBytes int64
	// Registry receives the server's instruments (default: a fresh one).
	Registry *metrics.Registry
	// TraceBufferSize bounds the ring buffer of completed request traces
	// served by /debug/traces (default 256; negative disables tracing).
	TraceBufferSize int
	// Logger receives the structured access log (nil: no access logging).
	Logger *slog.Logger
	// SlowRequestThreshold: requests at least this slow are logged at Warn
	// with their span breakdown (0 disables the slow-request log).
	SlowRequestThreshold time.Duration
	// AdmissionQueueDepth bounds requests waiting for a worker slot;
	// arrivals beyond it are shed with 429 + Retry-After (default 64;
	// negative sheds whenever no worker is immediately free).
	AdmissionQueueDepth int
	// AdmissionQueueCost bounds the summed cost estimate (iteration count
	// × topology size) of queued requests (0 = unbounded). An empty queue
	// always accepts one waiter regardless of cost.
	AdmissionQueueCost int64
	// Degraded configures graceful degradation under overload.
	Degraded DegradedConfig
	// Repair configures transparent incremental re-planning on POST
	// /v1/map: a request whose workload matches a cached clustering and
	// whose topology drifts within tolerance re-enters the pipeline at the
	// balance stage instead of recomputing from tags. POST /v1/map/batch
	// repairs siblings onto their family leader's clustering regardless of
	// this switch.
	Repair RepairConfig
	// Faults, when non-nil, deterministically injects latency spikes,
	// pipeline-stage errors and plan-cache leader crashes (see
	// internal/faults) and enables GET/POST /debug/faults.
	Faults *faults.Injector
	// Cluster, when non-nil, makes this server one member of a
	// consistent-hash ring of cachemapd processes: local plan-cache misses
	// first ask the key's owner over the internal fill protocol before
	// computing (see cluster.go).
	Cluster *cluster.Node
	// EventBufferSize bounds the ring of wide per-request events served by
	// GET /debug/events (default 256; negative disables the ring — events
	// still flow to the access log).
	EventBufferSize int
	// LogSampleRate is the sampled fraction of 200-OK fast-path access-log
	// lines (default 1: log every request; negative: none). Errors,
	// degraded responses and slow requests always log, whatever the rate.
	LogSampleRate float64
	// LogSampleSeed seeds the deterministic log-sampling draw (default 1).
	LogSampleSeed uint64
	// Store configures the persistent plan store (see persist.go): with a
	// non-empty Store.Dir the plan cache grows a disk-backed second tier —
	// reads hit the in-memory LRU first, a miss consults the append-only
	// plan log before the ring/pipeline, and writes are persisted behind a
	// bounded write-behind queue. A restarted server warm-scans the log
	// and serves previously computed plans as hits.
	Store StoreConfig
	// Quality configures shadow-simulation sampling of served plans (see
	// internal/quality): at Quality.Rate > 0 a deterministic fraction of
	// /v1/map responses is re-simulated off the request path and recorded
	// in the per-family quality ledger behind GET /debug/quality. The
	// Quality.OnRecord hook is owned by the server and must be left nil.
	Quality quality.Config
}

func (c *Config) applyDefaults() {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.PlanCacheSize <= 0 {
		c.PlanCacheSize = 512
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.Registry == nil {
		c.Registry = metrics.NewRegistry()
	}
	if c.TraceBufferSize == 0 {
		c.TraceBufferSize = 256
	}
	if c.AdmissionQueueDepth == 0 {
		c.AdmissionQueueDepth = 64
	}
	if c.AdmissionQueueDepth < 0 {
		c.AdmissionQueueDepth = 0
	}
	if c.EventBufferSize == 0 {
		c.EventBufferSize = 256
	}
	if c.LogSampleRate == 0 {
		c.LogSampleRate = 1
	}
	if c.LogSampleSeed == 0 {
		c.LogSampleSeed = 1
	}
	c.Degraded.applyDefaults()
	c.Repair.applyDefaults()
	c.Store.applyDefaults()
}

// RepairConfig controls the incremental re-planning fast-path.
type RepairConfig struct {
	// Enabled turns the transparent repair path on for POST /v1/map and
	// /v1/simulate. Default off: under drift a repaired plan is a valid
	// approximation, not the plan a full compute would produce, so
	// byte-exact serving paths (e.g. ring members proving plan
	// byte-equality) must opt in deliberately.
	Enabled bool
	// Tolerance is the relative per-layer topology drift under which a
	// cached clustering is repaired instead of recomputed (default 0.25,
	// matching the degraded stale tolerance; see plancache.TopoSig).
	Tolerance float64
}

func (c *RepairConfig) applyDefaults() {
	if c.Tolerance <= 0 {
		c.Tolerance = 0.25
	}
}

// Replan outcomes recorded in responses and
// cachemapd_replan_total{outcome}.
const (
	// ReplanFull marks a plan computed by the full pipeline.
	ReplanFull = "full"
	// ReplanIncremental marks a plan repaired from a cached clustering:
	// only balance/schedule/encode ran; tags through cluster were reused.
	ReplanIncremental = "incremental"
	// ReplanStaleServed marks a degraded response that served a stale plan
	// unmodified (no pipeline stage ran at all).
	ReplanStaleServed = "stale_served"
)

// Server is the mapping-as-a-service daemon core. Create with New; it is
// safe for concurrent use.
type Server struct {
	cfg     Config
	reg     *metrics.Registry
	cache   *plancache.Cache[cachedPlan]
	stale   *plancache.StaleTier[staleValue]
	sem     chan struct{}
	adm     admission
	jobs    jobClock
	faults  *faults.Injector
	tracer  *obs.Tracer
	cluster *cluster.Node
	sampler *quality.Sampler
	events  *EventLog
	planLog *planstore.Log[cachedPlan]         // nil without -store-dir
	planWB  *planstore.WriteBehind[cachedPlan] // nil without -store-dir
	logN    atomic.Uint64                      // access-log sampling arrival counter

	reqTotal       *metrics.Counter
	reqMap         *metrics.Counter
	reqSimulate    *metrics.Counter
	reqErrors      *metrics.Counter
	inFlight       *metrics.Gauge
	cacheHits      *metrics.Counter
	cacheMisses    *metrics.Counter
	cacheEvictions *metrics.Counter
	cacheCoalesced *metrics.Counter
	cacheReelect   *metrics.Counter
	slowRequests   *metrics.Counter
	simPairsGen    *metrics.Counter
	simPairsDense  *metrics.Counter
	admShed        *metrics.Counter
	computes       *metrics.Counter
	reqInternal    *metrics.Counter
	reqBatch       *metrics.Counter
	batchSpecs     *metrics.Counter
	replans        *metrics.CounterVec
	stageRuns      *metrics.CounterVec
	degraded       *metrics.CounterVec
	faultsFired    *metrics.CounterVec
	clusterDur     *metrics.Histogram
	reqDur         *metrics.Histogram
	stageDur       *metrics.HistogramVec
	missRate       *metrics.GaugeVec

	// onJobStart, when non-nil, runs at the start of every admitted
	// mapping job (test synchronization hook).
	onJobStart func()
}

// New builds a Server from the configuration. It panics if the
// configuration cannot be realized, which only a persistent store that
// fails to open can cause — callers enabling Store.Dir should prefer
// NewServer and handle the error.
func New(cfg Config) *Server {
	s, err := NewServer(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// NewServer builds a Server from the configuration. The only fallible
// step is opening the persistent plan store (Store.Dir non-empty): its
// startup scan tolerates torn and corrupt logs by design, so an error
// here means the directory itself is unusable.
func NewServer(cfg Config) (*Server, error) {
	cfg.applyDefaults()
	s := &Server{
		cfg:     cfg,
		reg:     cfg.Registry,
		stale:   plancache.NewStaleTier[staleValue](cfg.Degraded.StaleTierSize),
		sem:     make(chan struct{}, cfg.Workers),
		adm:     admission{depth: cfg.AdmissionQueueDepth, maxCost: cfg.AdmissionQueueCost},
		faults:  cfg.Faults,
		cluster: cfg.Cluster,
	}
	if cfg.Store.Dir != "" {
		log, err := planstore.Open[cachedPlan](planstore.Options{
			Dir:          cfg.Store.Dir,
			Capacity:     cfg.Store.Capacity,
			Schema:       uint32(mapping.PlanSchemaVersion),
			Fsync:        cfg.Store.Fsync,
			CompactRatio: cfg.Store.CompactRatio,
		}, planCodec())
		if err != nil {
			return nil, fmt.Errorf("opening plan store: %w", err)
		}
		s.planLog = log
		s.planWB = planstore.NewWriteBehind[cachedPlan](
			plancache.NewMemStore[cachedPlan](cfg.PlanCacheSize), log, cfg.Store.QueueLen)
		s.cache = plancache.NewWithStore[cachedPlan](s.planWB)
		s.registerPlanstoreMetrics()
	} else {
		s.cache = plancache.New[cachedPlan](cfg.PlanCacheSize)
	}
	s.reqTotal = s.reg.Counter("cachemapd_requests_total", "API requests received")
	s.reqMap = s.reg.Counter("cachemapd_map_requests_total", "POST /v1/map requests received")
	s.reqSimulate = s.reg.Counter("cachemapd_simulate_requests_total", "POST /v1/simulate requests received")
	s.reqErrors = s.reg.Counter("cachemapd_request_errors_total", "API requests answered with a non-2xx status")
	s.inFlight = s.reg.Gauge("cachemapd_in_flight_requests", "API requests currently being served")
	s.cacheHits = s.reg.Counter("cachemapd_plan_cache_hits_total", "plan cache hits (incl. shared in-flight computations)")
	s.cacheMisses = s.reg.Counter("cachemapd_plan_cache_misses_total", "plan cache misses (cold plans computed)")
	s.clusterDur = s.reg.Histogram("cachemapd_clustering_duration_seconds",
		"wall time of cold mapping computations (hierarchical clustering)", metrics.DefaultLatencyBuckets())
	s.reqDur = s.reg.Histogram("cachemapd_request_duration_seconds",
		"end-to-end request latency", metrics.DefaultLatencyBuckets())
	s.stageDur = s.reg.HistogramVec("cachemapd_stage_duration_seconds",
		"wall time per pipeline stage of cold mapping computations", "stage", metrics.DefaultLatencyBuckets())
	s.cacheEvictions = s.reg.Counter("cachemapd_plan_cache_evictions_total",
		"plans evicted from the plan cache by capacity pressure")
	s.cacheCoalesced = s.reg.Counter("cachemapd_plan_cache_coalesced_waiters_total",
		"requests that waited on another request's in-flight computation (singleflight)")
	s.cacheReelect = s.reg.Counter("cachemapd_plan_cache_leader_reelections_total",
		"singleflight waiters that re-elected a leader after a canceled one")
	s.slowRequests = s.reg.Counter("cachemapd_slow_requests_total",
		"requests slower than the configured slow-request threshold")
	s.simPairsGen = s.reg.Counter("cachemapd_similarity_pairs_generated",
		"similarity pairs materialized by the sparse inverted-index engine (tag overlap, weight >= 1)")
	s.simPairsDense = s.reg.Counter("cachemapd_similarity_pairs_dense_bound",
		"similarity pairs the dense n(n-1)/2 enumeration would have generated for the same workloads")
	s.admShed = s.reg.Counter("cachemapd_admission_shed_total",
		"requests shed with 429 because the admission queue was saturated")
	s.computes = s.reg.Counter("cachemapd_pipeline_computes_total",
		"cold mapping pipeline computations run on this node (under cross-node singleflight the fleet-wide sum is one per plan key)")
	s.reqInternal = s.reg.Counter("cachemapd_internal_plan_requests_total",
		"peer-fill requests received on POST /internal/plan/{key}")
	s.reqBatch = s.reg.Counter("cachemapd_batch_requests_total",
		"POST /v1/map/batch requests received")
	s.batchSpecs = s.reg.Counter("cachemapd_batch_specs_total",
		"mapping specs carried by batch requests")
	s.replans = s.reg.CounterVec("cachemapd_replan_total",
		"plan productions by outcome: full pipeline, incremental repair of a cached clustering, or a stale plan served unmodified under degradation", "outcome")
	s.stageRuns = s.reg.CounterVec("cachemapd_pipeline_stage_runs_total",
		"pipeline stage executions by stage (an incremental repair re-runs only balance/schedule/encode)", "stage")
	s.degraded = s.reg.CounterVec("cachemapd_degraded_responses_total",
		"degraded responses served under overload, by degradation mode", "mode")
	s.faultsFired = s.reg.CounterVec("cachemapd_faults_injected_total",
		"faults injected by the chaos harness, by site", "site")
	s.reg.GaugeFunc("cachemapd_admission_queue_depth",
		"requests currently waiting in the admission queue for a worker slot",
		func() float64 { q, _ := s.adm.snapshot(); return float64(q) })
	s.reg.GaugeFunc("cachemapd_admission_queue_cost",
		"summed cost estimate (iterations x topology size) of queued requests",
		func() float64 { _, c := s.adm.snapshot(); return float64(c) })
	s.reg.GaugeFunc("cachemapd_admission_queue_limit",
		"configured admission queue depth bound",
		func() float64 { return float64(s.adm.depth) })
	s.reg.CounterFunc("cachemapd_stale_tier_hits_total",
		"degraded lookups answered by the stale plan tier",
		func() float64 { h, _ := s.stale.Stats(); return float64(h) })
	s.reg.CounterFunc("cachemapd_stale_tier_misses_total",
		"degraded lookups the stale plan tier could not answer (missing workload or topology drift beyond tolerance)",
		func() float64 { _, m := s.stale.Stats(); return float64(m) })
	s.reg.CounterFunc("cachemapd_repair_lookup_hits_total",
		"repair lookups answered by the stale tier with a resumable clustering within tolerance",
		func() float64 { h, _ := s.stale.RepairStats(); return float64(h) })
	s.reg.CounterFunc("cachemapd_repair_lookup_misses_total",
		"repair lookups the stale tier could not answer",
		func() float64 { _, m := s.stale.RepairStats(); return float64(m) })
	s.cache.OnHit = s.cacheHits.Inc
	s.cache.OnMiss = s.cacheMisses.Inc
	s.cache.OnEvict = func(plancache.Key, cachedPlan) { s.cacheEvictions.Inc() }
	s.cache.OnCoalesced = s.cacheCoalesced.Inc
	s.cache.OnReelect = s.cacheReelect.Inc
	if cfg.TraceBufferSize > 0 {
		s.tracer = obs.NewTracer(obs.NewSpanStore(cfg.TraceBufferSize))
	}
	if cfg.EventBufferSize > 0 {
		s.events = NewEventLog(cfg.EventBufferSize)
	}
	s.missRate = s.reg.GaugeVec("cachemapd_plan_quality_missrate",
		"shadow-simulated miss rate of the most recently sampled served plan, by paper cache level (L1 = client caches) and serve mode",
		"level", "mode")
	qcfg := cfg.Quality
	qcfg.OnRecord = s.onQualityRecord
	s.sampler = quality.NewSampler(qcfg)
	s.reg.CounterFunc("cachemapd_quality_sampled_total",
		"served responses enqueued for shadow simulation",
		func() float64 { return float64(s.sampler.Counts().Sampled) })
	s.reg.CounterFunc("cachemapd_quality_skipped_total",
		"served responses that failed the deterministic sampling draw",
		func() float64 { return float64(s.sampler.Counts().Skipped) })
	s.reg.CounterFunc("cachemapd_quality_overflow_total",
		"drawn samples shed because the shadow-simulation queue was full",
		func() float64 { return float64(s.sampler.Counts().Overflow) })
	registerRuntimeMetrics(s.reg)
	return s, nil
}

// Close releases the server's background resources: it stops the
// shadow-simulation sampler worker, then drains the write-behind queue
// and closes the plan log (when a persistent store is configured).
// In-flight HTTP requests are the http.Server's to drain, not Close's.
func (s *Server) Close() {
	s.sampler.Close()
	if s.planWB != nil {
		s.planWB.Close()
	}
}

// onQualityRecord runs on the sampler worker for every completed shadow
// simulation: it publishes the per-level miss-rate gauges and backfills
// the originating request's wide event with the verdict.
func (s *Server) onQualityRecord(rec quality.Record) {
	if rec.Err == "" {
		for k, v := range rec.MissRates {
			s.missRate.Set(v, fmt.Sprintf("L%d", k+1), rec.Mode)
		}
	}
	if s.events != nil {
		s.events.AttachQuality(rec.TraceID, rec)
	}
}

// Tracer returns the server's tracer (nil when tracing is disabled).
func (s *Server) Tracer() *obs.Tracer { return s.tracer }

// Registry returns the server's metrics registry.
func (s *Server) Registry() *metrics.Registry { return s.reg }

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/map", s.handleMap)
	mux.HandleFunc("POST /v1/map/batch", s.handleBatch)
	mux.HandleFunc("POST /v1/simulate", s.handleSimulate)
	mux.HandleFunc("POST /internal/plan/{key}", s.handleInternalPlan)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /debug/traces", s.handleTraces)
	mux.HandleFunc("GET /debug/traces/{id}", s.handleTraceByID)
	mux.HandleFunc("GET /debug/events", s.handleEvents)
	mux.HandleFunc("GET /debug/quality", s.handleQuality)
	mux.HandleFunc("GET /debug/faults", s.handleFaultsGet)
	mux.HandleFunc("POST /debug/faults", s.handleFaultsSet)
	mux.HandleFunc("GET /debug/cache/snapshot", s.handleSnapshotGet)
	mux.HandleFunc("POST /debug/cache/snapshot", s.handleSnapshotPost)
	return mux
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.reg.WritePrometheus(w)
}

// planKeySpec is what a plan's content address covers: the wire schema
// version plus the normalized request. Bumping PlanSchemaVersion therefore
// also invalidates cached plans of the old shape.
type planKeySpec struct {
	Schema  int        `json:"schema"`
	Request MapRequest `json:"request"`
}

// cachedPlan is the plan cache's value: the wire plan plus the stage
// breakdown of the computation that produced it. A cache hit returns the
// original breakdown, so callers can always see what the plan cost.
// FilledFrom records the ring peer that supplied the plan, when it was
// peer-filled rather than computed here; the provenance sticks for as
// long as the entry lives.
type cachedPlan struct {
	Plan       mapping.Plan
	Stages     []pipeline.StageTiming
	FilledFrom string
	// Replanned records how the plan was produced (ReplanFull or
	// ReplanIncremental; empty for peer-filled plans, whose production ran
	// on the owner) and ReusedStages which pipeline stages an incremental
	// repair reused from the cached clustering. Like FilledFrom, the
	// provenance sticks for as long as the entry lives.
	Replanned    string
	ReusedStages []string
	// state is the resumable mid-pipeline artifact of the computation
	// (nil for peer-filled plans and non-resumable schemes/modes); it
	// rides into the stale tier so later near-miss requests can repair it.
	state *pipeline.State
}

// computeOpts tunes one computePlan resolution.
type computeOpts struct {
	// internal marks requests arriving over the peer-fill protocol: the
	// owner serves them locally and never re-forwards or repairs.
	internal bool
	// repair allows answering a cache miss by incrementally re-planning a
	// cached clustering of the same workload (topology drift within the
	// repair tolerance) instead of running the full pipeline.
	repair bool
}

// computePlan resolves a validated job through the plan cache, computing
// the mapping on a miss. The computation runs under ctx and stops
// cooperatively when it is canceled; a canceled leader never poisons the
// cache (see plancache.Do). Successful plans are also recorded in the
// stale tier under the job's workload-only key, feeding degraded serving
// — including peer-filled plans, so a fill replicates the stale entry
// onto this node.
//
// When clustered and the key belongs to another ring member, the local
// miss first asks the owner over the fill protocol; the fetch runs
// inside the local singleflight leader, and the owner's own singleflight
// makes its compute the fleet-wide one. Any fill failure falls back to
// computing here. internal marks requests arriving over that protocol:
// the owner serves them from its cache or pipeline but never re-forwards,
// so skewed ring views cannot create forwarding loops.
//
// With a fault injector armed, the computation passes the injector's
// pipeline sites through a stage hook, and the plancache/leader site can
// crash the leader: the leader cancels its own Do context and abandons
// the key, waiting followers re-elect a successor (the production crash
// path), and the crashed request itself reports an *faults.InjectedError.
func (s *Server) computePlan(ctx context.Context, j *job, opt computeOpts) (cachedPlan, plancache.Key, bool, error) {
	key, err := PlanKey(j.req)
	if err != nil {
		return cachedPlan{}, plancache.Key{}, false, err
	}
	dctx := ctx
	var crash context.CancelFunc
	if s.faults != nil {
		dctx, crash = context.WithCancel(ctx)
		defer crash()
	}
	v, hit, err := s.cache.Do(dctx, key, func(cctx context.Context) (cachedPlan, error) {
		if crash != nil {
			if d := s.faults.Evaluate("plancache/leader"); d.Crash {
				s.faultsFired.Inc("plancache/leader")
				crash()
				return cachedPlan{}, &faults.InjectedError{Site: "plancache/leader"}
			}
		}
		if s.onJobStart != nil {
			s.onJobStart()
		}
		// Repair before peer fill: an in-memory clustering of our own is
		// cheaper than a network round trip, and a fill would make the
		// owner run the full pipeline on a cold fleet anyway.
		if opt.repair && !opt.internal {
			if cp, ok := s.tryRepair(cctx, j); ok {
				return cp, nil
			}
		}
		if s.cluster != nil && !opt.internal {
			if owner, self := s.cluster.Owner(key); !self {
				if cp, ok := s.peerFill(cctx, owner, key, j); ok {
					return cp, nil
				}
				// Owner down, slow or overloaded: compute locally below.
			}
		}
		cfg := j.cfg
		if s.faults != nil {
			cfg.StageHook = s.stageHook
		}
		s.computes.Inc()
		s.replans.Inc(ReplanFull)
		start := time.Now()
		res, err := pipeline.Map(cctx, j.scheme, j.work.Prog, cfg)
		if err != nil {
			return cachedPlan{}, err
		}
		s.clusterDur.Observe(time.Since(start).Seconds())
		s.observeStages(res.Stages)
		return cachedPlan{
			Plan:      mapping.PlanOf(res),
			Stages:    res.Stages,
			Replanned: ReplanFull,
			state:     res.State(),
		}, nil
	})
	if err != nil && ctx.Err() == nil && dctx.Err() != nil {
		// The injected leader crash canceled dctx, not the caller: surface
		// it as the injected fault it is, not as a cancellation.
		err = &faults.InjectedError{Site: "plancache/leader"}
	}
	// Anchor the stale tier at full computes (and peer fills): a repaired
	// plan derives from the entry it was repaired from, and letting it
	// overwrite that entry would re-base the drift comparison on each
	// repair — a random walk where A→B→C each stays within tolerance of
	// its predecessor while C drifts arbitrarily far from the clustering
	// that was actually computed. Keeping the ancestor makes every repair
	// measure drift against the last full pipeline run.
	if err == nil && v.Replanned != ReplanIncremental {
		s.stale.Put(j.wkKey, j.topoSig, staleValue{plan: v, key: key})
	}
	return v, key, hit, err
}

// observeStages records a pipeline run's per-stage durations, run counts
// and similarity pair statistics on the server's instruments.
func (s *Server) observeStages(sts []pipeline.StageTiming) {
	for _, st := range sts {
		s.stageRuns.Inc(st.Stage)
		s.stageDur.Observe(st.Stage, st.DurationMS/1e3)
		if st.Stage == pipeline.StageSimilarity {
			s.simPairsGen.Add(st.PairsGenerated)
			s.simPairsDense.Add(st.PairsDense)
		}
	}
}

// tryRepair attempts incremental re-planning: when the stale tier holds a
// resumable clustering for the same workload whose topology drifts from
// the requested one within the repair tolerance, the pipeline re-enters at
// the balance stage (pipeline.Resume) instead of recomputing from tags.
// Zero drift reproduces the full compute's plan byte for byte; under drift
// the repaired plan is valid for the new topology while preserving the
// cached clustering's locality. Any failure falls through to the full
// pipeline.
func (s *Server) tryRepair(ctx context.Context, j *job) (cachedPlan, bool) {
	if j.cfg.DepMode != pipeline.DepIgnore {
		return cachedPlan{}, false // dependence modes need tags/chunks artifacts
	}
	if j.scheme != pipeline.InterProcessor && j.scheme != pipeline.InterProcessorSched {
		return cachedPlan{}, false
	}
	v, _, _, ok := s.stale.Repair(j.wkKey, j.topoSig, s.cfg.Repair.Tolerance)
	if !ok || v.plan.state == nil || v.plan.state.Scheme != j.scheme {
		return cachedPlan{}, false
	}
	cfg := j.cfg
	if s.faults != nil {
		cfg.StageHook = s.stageHook
	}
	res, err := pipeline.Resume(ctx, v.plan.state, cfg)
	if err != nil {
		return cachedPlan{}, false
	}
	s.replans.Inc(ReplanIncremental)
	s.observeStages(res.Stages)
	return cachedPlan{
		Plan:         mapping.PlanOf(res),
		Stages:       res.Stages,
		Replanned:    ReplanIncremental,
		ReusedStages: pipeline.ReusedStages(),
		state:        res.State(),
	}, true
}

// stageHook adapts the fault injector to the pipeline: each stage start
// evaluates the injector's pipeline/<stage> site, applying latency spikes
// and injected errors.
func (s *Server) stageHook(ctx context.Context, stage string) error {
	d := s.faults.Evaluate("pipeline/" + stage)
	if d.Fired() {
		s.faultsFired.Inc("pipeline/" + stage)
	}
	if d.Delay > 0 {
		if err := faults.Sleep(ctx, d.Delay); err != nil {
			return err
		}
	}
	return d.Err
}

// ComputePlan runs a mapping request in process (no HTTP), through the
// same validation, worker pool accounting and plan cache as the API.
func (s *Server) ComputePlan(req MapRequest) (*MapResponse, error) {
	j, err := buildJob(req)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	s.sem <- struct{}{}
	defer func() { <-s.sem }()
	out, key, hit, err := s.computePlan(context.Background(), j, computeOpts{repair: s.cfg.Repair.Enabled})
	if err != nil {
		return nil, err
	}
	return &MapResponse{
		Plan:         out.Plan,
		Stages:       out.Stages,
		CacheKey:     key.String(),
		Cached:       hit,
		FilledFrom:   out.FilledFrom,
		Replanned:    out.Replanned,
		ReusedStages: out.ReusedStages,
		ElapsedMS:    float64(time.Since(start)) / float64(time.Millisecond),
	}, nil
}

// runJob executes fn on a pooled worker slot under the request deadline.
//
// Admission: a free worker slot is taken immediately; otherwise the
// request must first reserve a spot in the bounded admission queue —
// saturation (by depth or summed cost) sheds it at once with a *shedError
// (429 + Retry-After upstream), so a shed request never blocks and never
// consumes a worker. A queued request that cannot reach a worker before
// its deadline gives up with errBusy, still without having run.
//
// fn observes ctx and returns cooperatively when it expires (the pipeline
// checks between stages and inside its long loops), so a timed-out request
// frees its worker instead of leaking a detached goroutine that keeps
// computing after the 504 went out.
func runJob[T any](s *Server, ctx context.Context, cost int64, fn func(ctx context.Context) (T, error)) (T, error) {
	var zero T
	if s.faults != nil {
		d := s.faults.Evaluate("server/admit")
		if d.Fired() {
			s.faultsFired.Inc("server/admit")
		}
		if d.Delay > 0 {
			if err := faults.Sleep(ctx, d.Delay); err != nil {
				return zero, errDeadline
			}
		}
		if d.Err != nil {
			return zero, d.Err
		}
	}
	arrived := time.Now()
	select {
	case s.sem <- struct{}{}:
	default:
		if !s.adm.tryEnqueue(cost) {
			s.admShed.Inc()
			return zero, &shedError{retryAfter: s.retryAfter()}
		}
		select {
		case s.sem <- struct{}{}:
			s.adm.dequeue(cost)
		case <-ctx.Done():
			s.adm.dequeue(cost)
			return zero, errBusy
		}
	}
	defer func() { <-s.sem }()
	if ev := eventFrom(ctx); ev != nil {
		ev.AdmissionWaitMS = float64(time.Since(arrived)) / float64(time.Millisecond)
	}
	start := time.Now()
	v, err := fn(ctx)
	s.jobs.observe(time.Since(start))
	if err != nil && ctx.Err() != nil {
		return zero, errDeadline
	}
	return v, err
}

var (
	errBusy     = errors.New("server busy: no worker available before the request deadline")
	errDeadline = errors.New("request deadline exceeded")
)

func (s *Server) handleMap(w http.ResponseWriter, r *http.Request) {
	s.reqMap.Inc()
	s.serve(w, r, func(ctx context.Context, body []byte) (any, error) {
		var req MapRequest
		if err := decodeStrict(body, &req); err != nil {
			return nil, badRequest(err)
		}
		j, err := buildJob(req)
		if err != nil {
			return nil, badRequest(err)
		}
		start := time.Now()
		elapsed := func() float64 { return float64(time.Since(start)) / float64(time.Millisecond) }
		type planOut struct {
			plan cachedPlan
			key  plancache.Key
			hit  bool
		}
		out, err := runJob(s, ctx, j.cost, func(ctx context.Context) (planOut, error) {
			plan, key, hit, err := s.computePlan(ctx, j, computeOpts{repair: s.cfg.Repair.Enabled})
			return planOut{plan, key, hit}, err
		})
		if err != nil {
			if resp, ok := s.tryDegrade(ctx, j, err, elapsed); ok {
				s.annotateMap(ctx, j, resp)
				return resp, nil
			}
			return nil, err
		}
		resp := &MapResponse{
			Plan:         out.plan.Plan,
			Stages:       out.plan.Stages,
			CacheKey:     out.key.String(),
			Cached:       out.hit,
			FilledFrom:   out.plan.FilledFrom,
			Replanned:    out.plan.Replanned,
			ReusedStages: out.plan.ReusedStages,
			ElapsedMS:    elapsed(),
		}
		s.annotateMap(ctx, j, resp)
		return resp, nil
	})
}

// serveMode classifies how a map response's plan reached the client, for
// the quality ledger and the wide event (see quality.Modes).
func serveMode(resp *MapResponse) string {
	switch {
	case resp.Degraded == DegradedStale:
		return quality.ModeDegradedStale
	case resp.Degraded == DegradedFallback:
		return quality.ModeDegradedFallback
	case resp.Cached:
		return quality.ModeCached
	case resp.Replanned == ReplanIncremental:
		return quality.ModeIncremental
	default:
		return quality.ModeFull
	}
}

// annotateMap fills the request's wide event from a successful (possibly
// degraded) map response and stages the served plan for shadow-simulation
// sampling. The sample only references the response plan — decoding and
// simulating happen on the sampler worker, never here.
func (s *Server) annotateMap(ctx context.Context, j *job, resp *MapResponse) {
	ev := eventFrom(ctx)
	if ev == nil {
		return
	}
	mode := serveMode(resp)
	ev.Family = j.family
	ev.Mode = mode
	ev.CacheKey = resp.CacheKey
	ev.ReusedStages = resp.ReusedStages
	ev.DegradedCause = resp.DegradedCause
	if len(resp.Stages) > 0 {
		ev.StageMS = make(map[string]float64, len(resp.Stages))
		for _, st := range resp.Stages {
			ev.StageMS[st.Stage] = st.DurationMS
		}
	}
	if !s.sampler.Active() {
		return
	}
	ev.sample = &quality.Sample{
		TraceID: ev.TraceID,
		Family:  j.family,
		Mode:    mode,
		Tree:    j.tree,
		Prog:    j.work.Prog,
		Plan:    &resp.Plan,
		Params:  iosim.DefaultParams(),
	}
}

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	s.reqSimulate.Inc()
	s.serve(w, r, func(ctx context.Context, body []byte) (any, error) {
		var req SimRequest
		if err := decodeStrict(body, &req); err != nil {
			return nil, badRequest(err)
		}
		j, err := buildJob(req.MapRequest)
		if err != nil {
			return nil, badRequest(err)
		}
		params, err := req.simParams()
		if err != nil {
			return nil, badRequest(err)
		}
		start := time.Now()
		return runJob(s, ctx, j.cost, func(ctx context.Context) (any, error) {
			out, key, hit, err := s.computePlan(ctx, j, computeOpts{repair: s.cfg.Repair.Enabled})
			if err != nil {
				return nil, err
			}
			asg, err := out.Plan.Assignment()
			if err != nil {
				return nil, err
			}
			m, err := iosim.RunCtx(ctx, j.tree, j.work.Prog, asg, params)
			if err != nil {
				return nil, err
			}
			resp := &SimResponse{
				Scheme:      string(j.scheme),
				IOLatencyMS: m.IOLatencyMS(),
				ExecTimeMS:  m.ExecTimeMS(),
				DiskReads:   m.DiskReads,
				Writebacks:  m.DiskWritebacks,
				Iterations:  m.Iterations,
				CacheKey:    key.String(),
				Cached:      hit,
				ElapsedMS:   float64(time.Since(start)) / float64(time.Millisecond),
			}
			// One entry per cache-bearing level (a dummy root carries none).
			for k := 1; k <= len(m.LevelStats); k++ {
				resp.MissRates = append(resp.MissRates, m.MissRateL(k))
			}
			if ev := eventFrom(ctx); ev != nil {
				ev.Family = j.family
				ev.CacheKey = key.String()
				if hit {
					ev.Mode = quality.ModeCached
				} else {
					ev.Mode = quality.ModeFull
				}
			}
			return resp, nil
		})
	})
}

// httpError carries a status code chosen by the handler body.
type httpError struct {
	status int
	err    error
}

func (e *httpError) Error() string { return e.err.Error() }
func (e *httpError) Unwrap() error { return e.err }

func badRequest(err error) error { return &httpError{status: http.StatusBadRequest, err: err} }

// serve is the shared request scaffold: accounting, the request root span
// (ingesting `traceparent`, echoing `X-Trace-Id`), body limits, deadline,
// dispatch, JSON encoding of the result or error, and the access log.
func (s *Server) serve(w http.ResponseWriter, r *http.Request, fn func(ctx context.Context, body []byte) (any, error)) {
	s.reqTotal.Inc()
	s.inFlight.Inc()
	defer s.inFlight.Dec()
	start := time.Now()

	remote, _ := obs.ParseTraceParent(r.Header.Get("traceparent"))
	rctx, span := s.tracer.StartRoot(r.Context(), r.Method+" "+r.URL.Path, remote)
	if span != nil {
		w.Header().Set("X-Trace-Id", span.TraceID().String())
		span.SetAttr("http.method", r.Method)
		span.SetAttr("http.path", r.URL.Path)
	}

	// The request's wide event rides the context so deeper layers
	// (admission wait, serve-mode classification) annotate it in place;
	// serve publishes a copy once the response is out.
	ev := &Event{Time: start, Method: r.Method, Path: r.URL.Path}
	if span != nil {
		ev.TraceID = span.TraceID().String()
	}
	rctx = withEvent(rctx, ev)

	status := http.StatusOK
	v, err := func() (any, error) {
		body, err := readBody(w, r, s.cfg.MaxBodyBytes)
		if err != nil {
			return nil, badRequest(err)
		}
		ctx, cancel := context.WithTimeout(rctx, s.cfg.RequestTimeout)
		defer cancel()
		return fn(ctx, body)
	}()
	if err != nil {
		var he *httpError
		var se *shedError
		var ie *faults.InjectedError
		switch {
		case errors.As(err, &he):
			status = he.status
			err = he.err
		case errors.As(err, &se):
			status = http.StatusTooManyRequests
			w.Header().Set("Retry-After", strconv.Itoa(se.seconds()))
		case errors.Is(err, errBusy):
			status = http.StatusServiceUnavailable
		case errors.Is(err, errDeadline):
			status = http.StatusGatewayTimeout
		case errors.As(err, &ie):
			status = http.StatusServiceUnavailable
		default:
			status = http.StatusInternalServerError
		}
		s.writeError(w, status, err)
	} else {
		s.writeJSON(w, status, v)
	}

	d := time.Since(start)
	// The exemplar ties the bucket's most recent observation back to its
	// trace, so a latency spike in /metrics links to /debug/traces/{id}.
	s.reqDur.ObserveWithExemplar(d.Seconds(), ev.TraceID)
	if span != nil {
		span.SetAttr("http.status", strconv.Itoa(status))
		if err != nil {
			span.SetAttr("error", err.Error())
		}
		span.End() // publishes the trace to the span store
	}
	ev.Status = status
	ev.DurationMS = float64(d) / float64(time.Millisecond)
	if err != nil {
		ev.Error = err.Error()
	}
	if s.events != nil {
		s.events.Add(*ev)
	}
	// Offer the served plan for shadow simulation only after the event is
	// retained, so the worker's verdict always finds its event to backfill
	// (the sim itself runs on the sampler worker, never here).
	if ev.sample != nil && s.sampler.Offer(*ev.sample) && s.events != nil {
		s.events.markSampled(ev.TraceID)
	}
	s.logRequest(r, status, d, span, ev)
}

// logRequest emits the structured access log line and, above the
// slow-request threshold, a Warn line carrying the request's span
// breakdown (from the just-published trace). 200-OK fast-path lines are
// sampled down by LogSampleRate; errors, degraded responses and slow
// requests always log — a quiet log never hides a misbehaving request.
func (s *Server) logRequest(r *http.Request, status int, d time.Duration, span *obs.Span, ev *Event) {
	slow := s.cfg.SlowRequestThreshold > 0 && d >= s.cfg.SlowRequestThreshold
	if slow {
		s.slowRequests.Inc()
	}
	if s.cfg.Logger == nil {
		return
	}
	mundane := status < 300 && !slow && ev.DegradedCause == ""
	if mundane && !quality.Drawn(s.cfg.LogSampleSeed, s.logN.Add(1), s.cfg.LogSampleRate) {
		return
	}
	traceID := ""
	if span != nil {
		traceID = span.TraceID().String()
	}
	attrs := []slog.Attr{
		slog.String("method", r.Method),
		slog.String("path", r.URL.Path),
		slog.Int("status", status),
		slog.Duration("duration", d),
		slog.String("remote", r.RemoteAddr),
	}
	if traceID != "" {
		attrs = append(attrs, slog.String("trace_id", traceID))
	}
	if ev.Mode != "" {
		attrs = append(attrs, slog.String("mode", ev.Mode))
	}
	if ev.Family != "" {
		attrs = append(attrs, slog.String("family", ev.Family))
	}
	s.cfg.Logger.LogAttrs(context.Background(), slog.LevelInfo, "request", attrs...)
	if slow {
		if traceID != "" {
			if t, ok := s.tracer.Store().Get(traceID); ok {
				attrs = append(attrs, slog.String("spans", spanBreakdown(t)))
			}
		}
		attrs = append(attrs, slog.Duration("threshold", s.cfg.SlowRequestThreshold))
		s.cfg.Logger.LogAttrs(context.Background(), slog.LevelWarn, "slow request", attrs...)
	}
}

// spanBreakdown renders a trace's non-root spans compactly for the
// slow-request log: "plancache.compute=1.2s cluster=900ms ...".
func spanBreakdown(t *obs.Trace) string {
	var b bytes.Buffer
	for i, sp := range t.Spans {
		if i == len(t.Spans)-1 { // root span: its duration is the log's duration field
			continue
		}
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%s", sp.Name, time.Duration(sp.DurationNS))
	}
	return b.String()
}

func readBody(w http.ResponseWriter, r *http.Request, limit int64) ([]byte, error) {
	defer r.Body.Close()
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, limit))
	if err != nil {
		return nil, fmt.Errorf("reading body: %w", err)
	}
	return body, nil
}

// decodeStrict unmarshals JSON, rejecting unknown fields so spec typos
// fail loudly instead of silently mapping the wrong thing.
func decodeStrict(body []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("decoding request: %w", err)
	}
	return nil
}

// jsonBuf is a pooled response-encode buffer with its bound encoder, so a
// plan-cache hit (or repair) response reuses one buffer instead of paying
// encoder state and copy-on-grow garbage per request. Encoding into the
// buffer before touching the ResponseWriter also means an encode failure
// still yields a clean 500 instead of a torn body.
type jsonBuf struct {
	buf bytes.Buffer
	enc *json.Encoder
}

var jsonBufPool = sync.Pool{New: func() any {
	b := &jsonBuf{}
	b.enc = json.NewEncoder(&b.buf)
	return b
}}

// jsonBufMaxRetain caps the buffer size returned to the pool; a rare huge
// plan should not pin its backing array forever.
const jsonBufMaxRetain = 1 << 20

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	b := jsonBufPool.Get().(*jsonBuf)
	b.buf.Reset()
	if err := b.enc.Encode(v); err != nil {
		jsonBufPool.Put(b)
		s.writeError(w, http.StatusInternalServerError, fmt.Errorf("encoding response: %w", err))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(b.buf.Len()))
	w.WriteHeader(status)
	w.Write(b.buf.Bytes())
	if b.buf.Cap() <= jsonBufMaxRetain {
		jsonBufPool.Put(b)
	}
}

func (s *Server) writeError(w http.ResponseWriter, status int, err error) {
	s.reqErrors.Inc()
	s.writeJSON(w, status, errorResponse{Error: err.Error()})
}
