package server

import (
	"encoding/json"
	"fmt"
	"sync"

	"repro/internal/cache"
	"repro/internal/hierarchy"
	"repro/internal/iosim"
	"repro/internal/mapping"
	"repro/internal/pipeline"
	"repro/internal/plancache"
	"repro/internal/workloads"
)

// WorkloadSpec names the workload a request maps: one of the paper's
// application models (App) or a generated workload (Synth / Stencil).
// Exactly one of App, Synth, Stencil must be set.
type WorkloadSpec struct {
	// App is one of the paper's eight application models (see
	// workloads.Names); Scale >= 1 divides every extent (default 1).
	App   string `json:"app,omitempty"`
	Scale int    `json:"scale,omitempty"`
	// Synth builds a workload from the parameterized synthetic generator.
	Synth *workloads.SynthSpec `json:"synth,omitempty"`
	// Stencil builds a 2-D stencil workload.
	Stencil *workloads.StencilSpec `json:"stencil,omitempty"`
	// ChunkKB re-partitions the data space into chunks of this many KB
	// (default: the workload's own chunk size).
	ChunkKB int64 `json:"chunk_kb,omitempty"`
}

// MapRequest is the body of `POST /v1/map`: everything a plan depends on.
// Its canonical JSON encoding (with defaults applied) is the plan-cache
// key.
type MapRequest struct {
	Workload WorkloadSpec `json:"workload"`
	// Topology is the compact layered spec of cmd/cachemap's -topo flag,
	// e.g. "16/32/64@16,8,4" (node counts top-down, then per-layer cache
	// capacities in chunks).
	Topology string `json:"topology"`
	// Scheme is one of original, intra, inter, inter-sched (default inter).
	Scheme string `json:"scheme,omitempty"`
	// BalanceThreshold is the distributor's load-balance bound (default
	// 0.10, the paper's BThres).
	BalanceThreshold float64 `json:"balance_threshold,omitempty"`
	// Alpha and Beta weigh the Figure 15 scheduler (default 0.5 each).
	Alpha float64 `json:"alpha,omitempty"`
	Beta  float64 `json:"beta,omitempty"`
	// DepMode is one of ignore, merge, sync (default ignore).
	DepMode string `json:"dep_mode,omitempty"`
}

// MapResponse is the body returned by `POST /v1/map`.
type MapResponse struct {
	// Plan is the versioned, serializable mapping (see mapping.Plan).
	Plan mapping.Plan `json:"plan"`
	// Stages is the per-stage timing breakdown of the pipeline run that
	// produced the plan. When Cached is true, it describes the original
	// (cold) computation, not this request.
	Stages []pipeline.StageTiming `json:"stages"`
	// CacheKey is the plan's content address (hex SHA-256).
	CacheKey string `json:"cache_key"`
	// Cached reports whether the plan was served from the plan cache.
	Cached bool `json:"cached"`
	// FilledFrom, when non-empty, is the ring peer whose cache or pipeline
	// supplied this plan over the peer-fill protocol (the plan's owner).
	// It persists while the filled entry lives in the local cache.
	FilledFrom string `json:"filled_from,omitempty"`
	// Replanned records how the plan was produced: "full" (the whole
	// pipeline ran) or "incremental" (a cached clustering of the same
	// workload was repaired — re-balanced and re-scheduled — for this
	// topology). When Cached is true it describes the original production,
	// like Stages. Empty for peer-filled and degraded responses.
	Replanned string `json:"replanned,omitempty"`
	// ReusedStages lists the pipeline stages an incremental repair reused
	// from the cached clustering instead of re-running (the complement of
	// the entries in Stages).
	ReusedStages []string `json:"reused_stages,omitempty"`
	// ElapsedMS is the server-side time to produce the plan.
	ElapsedMS float64 `json:"elapsed_ms"`
	// Degraded, when non-empty, marks a response served under overload:
	// "stale" (a cached plan for the same workload whose topology drifts
	// within tolerance) or "fallback" (the cheap lexicographic mapping).
	Degraded string `json:"degraded,omitempty"`
	// DegradedCause names the overload symptom that triggered degradation:
	// queue_full, admission_timeout, deadline or fault.
	DegradedCause string `json:"degraded_cause,omitempty"`
	// StaleAgeMS is the age of the stale plan served (Degraded == "stale").
	StaleAgeMS float64 `json:"stale_age_ms,omitempty"`
}

// SimRequest is the body of `POST /v1/simulate`: a mapping request plus
// optional simulator knobs. The embedded mapping request goes through the
// plan cache exactly like `POST /v1/map`.
type SimRequest struct {
	MapRequest
	// Policy selects the storage-cache replacement policy: lru (default),
	// fifo, clock, mq.
	Policy string `json:"policy,omitempty"`
	// WritePolicy is one of allocate (default), fetch, through.
	WritePolicy string `json:"write_policy,omitempty"`
	// PrefetchDepth enables sequential readahead of this many chunks.
	PrefetchDepth int `json:"prefetch_depth,omitempty"`
	// Exclusive enables DEMOTE-style exclusive caching.
	Exclusive bool `json:"exclusive,omitempty"`
	// Cooperative enables cooperative sibling-cache probing.
	Cooperative bool `json:"cooperative,omitempty"`
}

// SimResponse is the body returned by `POST /v1/simulate`.
type SimResponse struct {
	Scheme string `json:"scheme"`
	// MissRates[k-1] is the aggregate miss rate of paper-level Lk
	// (L1 = client caches, upward from there).
	MissRates   []float64 `json:"miss_rates"`
	IOLatencyMS float64   `json:"io_latency_ms"`
	ExecTimeMS  float64   `json:"exec_time_ms"`
	DiskReads   int64     `json:"disk_reads"`
	Writebacks  int64     `json:"writebacks"`
	Iterations  int64     `json:"iterations"`
	// CacheKey / Cached describe the plan-cache interaction of the
	// underlying mapping.
	CacheKey  string  `json:"cache_key"`
	Cached    bool    `json:"cached"`
	ElapsedMS float64 `json:"elapsed_ms"`
}

// errorResponse is the JSON error envelope for non-2xx statuses.
type errorResponse struct {
	Error string `json:"error"`
}

// job is a fully validated, defaulted mapping request ready to run.
type job struct {
	req    MapRequest // normalized: defaults applied
	work   workloads.Workload
	tree   *hierarchy.Tree
	scheme pipeline.Scheme
	cfg    pipeline.Config

	// family is the workload family for telemetry grouping: the app name,
	// or the synthetic/stencil spec's name when it carries one.
	family string
	// cost estimates the job's work for admission accounting: iteration
	// count × topology size.
	cost int64
	// wkKey is the workload-only content address (the request with its
	// topology cleared) and topoSig the topology summary — together the
	// stale tier's lookup key for degraded serving.
	wkKey   plancache.Key
	topoSig plancache.TopoSig
}

// normalize applies defaults in place so that equivalent requests share
// one canonical encoding (and therefore one cache key).
func (r *MapRequest) normalize() {
	if r.Scheme == "" {
		r.Scheme = string(pipeline.InterProcessor)
	}
	if r.Workload.App != "" && r.Workload.Scale == 0 {
		r.Workload.Scale = 1
	}
	if r.BalanceThreshold == 0 {
		r.BalanceThreshold = 0.10
	}
	if r.Alpha == 0 && r.Beta == 0 {
		r.Alpha, r.Beta = 0.5, 0.5
	}
	if r.DepMode == "" {
		r.DepMode = "ignore"
	}
}

// parseDepMode maps the wire name to the pipeline constant.
func parseDepMode(s string) (pipeline.DepMode, error) {
	switch s {
	case "ignore":
		return pipeline.DepIgnore, nil
	case "merge":
		return pipeline.DepMerge, nil
	case "sync":
		return pipeline.DepSync, nil
	}
	return 0, fmt.Errorf("unknown dep_mode %q (want ignore, merge or sync)", s)
}

// The spec caches memoize the two expensive, deterministic artifacts a
// request derives before it can even probe the plan cache: the parsed
// topology tree (plus its drift signature) and the constructed workload.
// Both are pure functions of their spec and read-only downstream — the
// planner builds fresh chunks per run, the simulator keys its per-node
// state by node ID, and nothing assigns into a Node after hierarchy.Build —
// so sharing them across requests is safe and takes the plan-cache hit
// path from ~160 allocations to a handful (see TestAllocPlanCacheHit). A
// serving fleet sees a tiny vocabulary of specs; adversarial spec churn is
// bounded by wholesale reset instead of eviction bookkeeping.
const specCacheMax = 512

type cachedTopo struct {
	tree *hierarchy.Tree
	sig  plancache.TopoSig
}

var (
	topoCacheMu sync.Mutex
	topoCache   map[string]cachedTopo
)

func parseTopology(spec string) (cachedTopo, error) {
	topoCacheMu.Lock()
	ct, ok := topoCache[spec]
	topoCacheMu.Unlock()
	if ok {
		return ct, nil
	}
	tree, err := hierarchy.Parse(spec)
	if err != nil {
		return cachedTopo{}, err
	}
	ct = cachedTopo{tree: tree, sig: topoSigOf(tree)}
	topoCacheMu.Lock()
	if topoCache == nil || len(topoCache) >= specCacheMax {
		topoCache = make(map[string]cachedTopo)
	}
	topoCache[spec] = ct
	topoCacheMu.Unlock()
	return ct, nil
}

type cachedWorkload struct {
	work   workloads.Workload
	family string
}

var (
	workCacheMu sync.Mutex
	workCache   map[string]cachedWorkload
)

// buildWorkload resolves the request's workload spec, memoized on the
// spec's canonical JSON (normalize ran first, so equivalent requests share
// one encoding — the same property the plan-cache key relies on).
func buildWorkload(spec WorkloadSpec) (cachedWorkload, error) {
	rawKey, err := json.Marshal(spec)
	if err != nil {
		return cachedWorkload{}, err
	}
	key := string(rawKey)
	workCacheMu.Lock()
	cw, ok := workCache[key]
	workCacheMu.Unlock()
	if ok {
		return cw, nil
	}

	var w workloads.Workload
	set := 0
	if spec.App != "" {
		set++
	}
	if spec.Synth != nil {
		set++
	}
	if spec.Stencil != nil {
		set++
	}
	if set != 1 {
		return cachedWorkload{}, fmt.Errorf("workload: exactly one of app, synth, stencil must be set")
	}
	family := ""
	switch {
	case spec.App != "":
		w, err = workloads.Get(spec.App, spec.Scale)
		family = spec.App
	case spec.Synth != nil:
		w, err = workloads.Synthesize(*spec.Synth)
		if family = spec.Synth.Name; family == "" {
			family = "synth"
		}
	default:
		w, err = workloads.SynthesizeStencil(*spec.Stencil)
		if family = spec.Stencil.Name; family == "" {
			family = "stencil"
		}
	}
	if err != nil {
		return cachedWorkload{}, err
	}
	if spec.ChunkKB < 0 {
		return cachedWorkload{}, fmt.Errorf("workload: negative chunk_kb %d", spec.ChunkKB)
	}
	if spec.ChunkKB > 0 {
		w = w.WithChunkBytes(spec.ChunkKB * 1024)
	}

	cw = cachedWorkload{work: w, family: family}
	workCacheMu.Lock()
	if workCache == nil || len(workCache) >= specCacheMax {
		workCache = make(map[string]cachedWorkload)
	}
	workCache[key] = cw
	workCacheMu.Unlock()
	return cw, nil
}

// buildJob validates the request and constructs the workload, topology and
// mapping configuration it describes.
func buildJob(req MapRequest) (*job, error) {
	req.normalize()

	cw, err := buildWorkload(req.Workload)
	if err != nil {
		return nil, err
	}
	w, family := cw.work, cw.family

	if req.Topology == "" {
		return nil, fmt.Errorf("topology: missing (compact spec such as \"16/32/64@16,8,4\")")
	}
	ct, err := parseTopology(req.Topology)
	if err != nil {
		return nil, err
	}
	tree := ct.tree

	scheme, err := pipeline.ParseScheme(req.Scheme)
	if err != nil {
		return nil, err
	}
	dep, err := parseDepMode(req.DepMode)
	if err != nil {
		return nil, err
	}
	if req.BalanceThreshold < 0 || req.BalanceThreshold > 1 {
		return nil, fmt.Errorf("balance_threshold %g outside [0, 1]", req.BalanceThreshold)
	}

	cfg := pipeline.Config{Tree: tree, DepMode: dep}
	cfg.Options.BalanceThreshold = req.BalanceThreshold
	cfg.Schedule.Alpha = req.Alpha
	cfg.Schedule.Beta = req.Beta

	j := &job{req: req, work: w, tree: tree, scheme: scheme, cfg: cfg, family: family}
	j.cost = w.Prog.Nest.BoxSize() * int64(len(tree.Nodes()))
	j.topoSig = ct.sig
	wk := req
	wk.Topology = "" // workload identity only: any topology may serve stale
	j.wkKey, err = plancache.KeyOf(planKeySpec{Schema: mapping.PlanSchemaVersion, Request: wk})
	if err != nil {
		return nil, err
	}
	return j, nil
}

// simParams builds the simulator timing model from the request's knobs.
func (r SimRequest) simParams() (iosim.Params, error) {
	p := iosim.DefaultParams()
	if r.Policy != "" {
		k, err := cache.ParsePolicy(r.Policy)
		if err != nil {
			return p, err
		}
		p.Policy = k
	}
	switch r.WritePolicy {
	case "", "allocate":
		p.Writes = iosim.WriteAllocateNoFetch
	case "fetch":
		p.Writes = iosim.WriteAllocateFetch
	case "through":
		p.Writes = iosim.WriteThrough
	default:
		return p, fmt.Errorf("unknown write_policy %q (want allocate, fetch or through)", r.WritePolicy)
	}
	if r.PrefetchDepth < 0 {
		return p, fmt.Errorf("negative prefetch_depth %d", r.PrefetchDepth)
	}
	p.PrefetchDepth = r.PrefetchDepth
	p.Exclusive = r.Exclusive
	p.Cooperative = r.Cooperative
	return p, nil
}
