package server

import (
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/quality"
)

// namedSynthReq builds a map request in the given workload family.
func namedSynthReq(name string, extent int64) MapRequest {
	r := synthReq(extent)
	r.Workload.Synth.Name = name
	return r
}

func getDebugJSON(t *testing.T, url string, v any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if v != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(body, v); err != nil {
			t.Fatalf("decoding %s: %v", body, err)
		}
	}
	return resp
}

// waitForQuality polls /debug/events until n events carry a backfilled
// quality verdict (the sampler worker is asynchronous by design).
func waitForQuality(t *testing.T, base string, n int) []Event {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		var er eventsResponse
		getDebugJSON(t, base+"/debug/events", &er)
		var got []Event
		for _, ev := range er.Events {
			if ev.Quality != nil {
				got = append(got, ev)
			}
		}
		if len(got) >= n {
			return got
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d events gained a quality verdict: %+v", len(got), n, er.Events)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestQualityTelemetryEndToEnd(t *testing.T) {
	s := New(Config{Quality: quality.Config{Rate: 1, Seed: 7}})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// One cold compute, one cache hit: two serve modes in the ledger.
	for i := 0; i < 2; i++ {
		resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/map", synthReq(128))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, body)
		}
	}
	evs := waitForQuality(t, ts.URL, 2)

	modes := map[string]bool{}
	for _, ev := range evs {
		if !ev.QualitySampled {
			t.Fatalf("event with verdict not marked sampled: %+v", ev)
		}
		if ev.Family != "t" {
			t.Fatalf("family = %q, want t", ev.Family)
		}
		if ev.Quality.Err != "" {
			t.Fatalf("shadow sim error: %s", ev.Quality.Err)
		}
		if len(ev.Quality.MissRates) == 0 {
			t.Fatalf("no miss rates: %+v", ev.Quality)
		}
		for _, mr := range ev.Quality.MissRates {
			if math.IsNaN(mr) || mr < 0 || mr > 1 {
				t.Fatalf("miss rate %v out of range", mr)
			}
		}
		modes[ev.Mode] = true
	}
	if !modes[quality.ModeFull] || !modes[quality.ModeCached] {
		t.Fatalf("serve modes = %v, want full and cached", modes)
	}

	// The ledger view mirrors the events, keyed family/mode.
	var qr qualityResponse
	getDebugJSON(t, ts.URL+"/debug/quality", &qr)
	if qr.SampleRate != 1 {
		t.Fatalf("sample_rate = %v", qr.SampleRate)
	}
	if qr.Sampler.Sampled < 2 {
		t.Fatalf("sampled = %d, want >= 2", qr.Sampler.Sampled)
	}
	for _, mode := range []string{quality.ModeFull, quality.ModeCached} {
		st, ok := qr.Ledger["t"][mode]
		if !ok || st.Samples == 0 {
			t.Fatalf("ledger missing family t mode %s: %+v", mode, qr.Ledger)
		}
		if len(st.MissRates) == 0 || math.IsNaN(st.MissRates[0]) {
			t.Fatalf("ledger mode %s has no finite miss rates: %+v", mode, st)
		}
	}
	if qr.PlanCache.Hits < 1 || qr.PlanCache.HitRatio <= 0 {
		t.Fatalf("plan cache stats: %+v", qr.PlanCache)
	}

	// Per-mode gauges and sampler counters surface in /metrics.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mb, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	mtext := string(mb)
	for _, want := range []string{
		`cachemapd_plan_quality_missrate{level="L1",mode="full"}`,
		`cachemapd_plan_quality_missrate{level="L1",mode="cached"}`,
		"cachemapd_quality_sampled_total",
		"cachemapd_quality_overflow_total",
	} {
		if !strings.Contains(mtext, want) {
			t.Fatalf("metrics missing %s", want)
		}
	}

	// The request-duration exemplar carries a trace ID that resolves to a
	// retained trace.
	m := regexp.MustCompile(`cachemapd_request_duration_seconds_bucket\{[^}]*\} \d+ # \{trace_id="([0-9a-f]+)"\}`).FindStringSubmatch(mtext)
	if m == nil {
		t.Fatalf("no exemplar on request duration histogram:\n%s", mtext)
	}
	if resp := getDebugJSON(t, ts.URL+"/debug/traces/"+m[1], nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("exemplar trace %s did not resolve: %d", m[1], resp.StatusCode)
	}
}

func TestQualityDegradedModeSampled(t *testing.T) {
	// Shed everything after warming the stale tier: the degraded fallback
	// path must feed the ledger under its own mode.
	s := New(Config{
		Workers:             1,
		Degraded:            DegradedConfig{Enabled: true},
		AdmissionQueueDepth: -1,
		Quality:             quality.Config{Rate: 1, Seed: 7},
	})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req := namedSynthReq("deg", 256)
	if resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/map", req); resp.StatusCode != http.StatusOK {
		t.Fatalf("warm-up status %d: %s", resp.StatusCode, body)
	}

	// Occupy the single worker, then issue a map that must degrade. The
	// started handshake ensures the blocker holds the worker slot before
	// any drifted request can race it to the semaphore.
	release := make(chan struct{})
	started := make(chan struct{}, 1)
	var wg sync.WaitGroup
	s.onJobStart = func() {
		select {
		case started <- struct{}{}:
		default:
		}
		<-release
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		postJSON(t, ts.Client(), ts.URL+"/v1/map", namedSynthReq("blocker", 512))
	}()
	<-started
	deadline := time.Now().Add(5 * time.Second)
	var degradedSeen string
	for degradedSeen == "" {
		drifted := req
		drifted.Topology = "1/2/4@16,8,5"
		resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/map", drifted)
		var mr MapResponse
		json.Unmarshal(body, &mr)
		if resp.StatusCode == http.StatusOK && mr.Degraded != "" {
			degradedSeen = mr.Degraded
		}
		if time.Now().After(deadline) {
			t.Fatalf("no degraded response before deadline (last %d: %s)", resp.StatusCode, body)
		}
	}
	close(release)
	wg.Wait()

	wantMode := quality.ModeDegradedStale
	if degradedSeen == DegradedFallback {
		wantMode = quality.ModeDegradedFallback
	}
	ok := false
	pollDeadline := time.Now().Add(5 * time.Second)
	for !ok && time.Now().Before(pollDeadline) {
		var qr qualityResponse
		getDebugJSON(t, ts.URL+"/debug/quality", &qr)
		if st, found := qr.Ledger["deg"][wantMode]; found && st.Samples > 0 && st.Errors == 0 {
			ok = true
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !ok {
		t.Fatalf("ledger never recorded mode %s for family deg", wantMode)
	}
}

func TestQualityDisabledIsInert(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if s.sampler.Active() {
		t.Fatal("rate-0 sampler reports active")
	}
	if resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/map", synthReq(64)); resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var qr qualityResponse
	getDebugJSON(t, ts.URL+"/debug/quality", &qr)
	if qr.SampleRate != 0 || qr.Sampler.Sampled != 0 {
		t.Fatalf("inert sampler reported work: %+v", qr)
	}
	if len(qr.Ledger) != 0 {
		t.Fatalf("inert ledger non-empty: %+v", qr.Ledger)
	}
	// The wide event still records the request, unsampled.
	var er eventsResponse
	getDebugJSON(t, ts.URL+"/debug/events?family=t", &er)
	if er.Count != 1 || er.Events[0].QualitySampled {
		t.Fatalf("events with sampling off: %+v", er)
	}
}

func TestDebugEventsFiltersAndLimit(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for i := 0; i < 3; i++ {
		postJSON(t, ts.Client(), ts.URL+"/v1/map", namedSynthReq("fa", 64))
	}
	postJSON(t, ts.Client(), ts.URL+"/v1/map", namedSynthReq("fb", 64))

	var er eventsResponse
	getDebugJSON(t, ts.URL+"/debug/events?family=fa", &er)
	if er.Count != 3 {
		t.Fatalf("family filter: %d events, want 3", er.Count)
	}
	getDebugJSON(t, ts.URL+"/debug/events?family=fa&limit=2", &er)
	if er.Count != 2 {
		t.Fatalf("limit: %d events, want 2", er.Count)
	}
	getDebugJSON(t, ts.URL+"/debug/events?mode=cached", &er)
	if er.Count != 2 { // two repeat requests hit the cache
		t.Fatalf("mode filter: %d events, want 2", er.Count)
	}
	for _, ev := range er.Events {
		if ev.Mode != quality.ModeCached || ev.CacheKey == "" {
			t.Fatalf("mode-filtered event: %+v", ev)
		}
	}
	getDebugJSON(t, ts.URL+"/debug/events?min_ms=999999", &er)
	if er.Count != 0 {
		t.Fatalf("min_ms filter: %d events, want 0", er.Count)
	}
	if resp := getDebugJSON(t, ts.URL+"/debug/events?limit=-1", nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("negative limit accepted: %d", resp.StatusCode)
	}

	// Stage timings and mode annotations ride the event.
	getDebugJSON(t, ts.URL+"/debug/events?mode=full&family=fa", &er)
	if er.Count != 1 {
		t.Fatalf("full-mode fa events: %d, want 1", er.Count)
	}
	if len(er.Events[0].StageMS) == 0 {
		t.Fatalf("cold event missing stage timings: %+v", er.Events[0])
	}
}

func TestDebugTracesLimitAndBound(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for i := 0; i < 4; i++ {
		postJSON(t, ts.Client(), ts.URL+"/v1/map", synthReq(64))
	}
	var limited tracesResponse
	getDebugJSON(t, ts.URL+"/debug/traces?limit=2", &limited)
	if limited.Count != 2 || !limited.Truncated {
		t.Fatalf("limit=2: count %d truncated %v", limited.Count, limited.Truncated)
	}
	var full tracesResponse
	getDebugJSON(t, ts.URL+"/debug/traces", &full)
	if full.Count < 4 || full.Truncated {
		t.Fatalf("unlimited: count %d truncated %v", full.Count, full.Truncated)
	}
}

func TestBoundJSONList(t *testing.T) {
	items := []string{strings.Repeat("a", 100), strings.Repeat("b", 100), strings.Repeat("c", 100)}
	kept, cut := boundJSONList(items, 250)
	if len(kept) != 2 || !cut {
		t.Fatalf("kept %d cut %v, want 2 true", len(kept), cut)
	}
	kept, cut = boundJSONList(items, 1<<20)
	if len(kept) != 3 || cut {
		t.Fatalf("kept %d cut %v, want 3 false", len(kept), cut)
	}
}

func TestLogSampling(t *testing.T) {
	var mu sync.Mutex
	counts := map[string]int{}
	logger := slog.New(slog.NewTextHandler(writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		switch {
		case strings.Contains(string(p), "msg=request"):
			counts["request"]++
		}
		return len(p), nil
	}), nil))

	s := New(Config{Logger: logger, LogSampleRate: -1}) // sample no OK lines
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for i := 0; i < 5; i++ {
		postJSON(t, ts.Client(), ts.URL+"/v1/map", synthReq(64))
	}
	mu.Lock()
	okLines := counts["request"]
	mu.Unlock()
	if okLines != 0 {
		t.Fatalf("%d 200-OK access-log lines at sample rate 0", okLines)
	}

	// Errors always log, whatever the rate.
	http.Post(ts.URL+"/v1/map", "application/json", strings.NewReader("{"))
	mu.Lock()
	errLines := counts["request"]
	mu.Unlock()
	if errLines != 1 {
		t.Fatalf("error line count = %d, want 1", errLines)
	}
}

// writerFunc adapts a function to io.Writer.
type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

func TestQualityFleetView(t *testing.T) {
	r := newTestRing(t, 3, func(i int, cfg *Config) {
		cfg.Quality = quality.Config{Rate: 1, Seed: uint64(i + 1)}
	})
	for _, s := range r.servers {
		defer s.Close()
	}

	// Serve one family per node so each ledger holds distinct entries.
	for i := 0; i < 3; i++ {
		resp, _, body := r.post(t, i, namedSynthReq(fmt.Sprintf("fam%d", i), 64+int64(i)*32))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("node %d status %d: %s", i, resp.StatusCode, body)
		}
	}

	// The fleet view from any node eventually merges all three ledgers.
	deadline := time.Now().Add(5 * time.Second)
	for {
		var qr qualityResponse
		getDebugJSON(t, r.https[0].URL+"/debug/quality", &qr)
		if len(qr.Fleet) != 3 {
			t.Fatalf("fleet size %d, want 3 (partial=%v)", len(qr.Fleet), qr.Partial)
		}
		if qr.Partial {
			t.Fatalf("fleet view partial: %+v", qr.Fleet)
		}
		if qr.Fleet[0].Node != r.addrs[0] {
			t.Fatalf("fleet[0] = %q, want self %q", qr.Fleet[0].Node, r.addrs[0])
		}
		families := map[string]bool{}
		for _, n := range qr.Fleet {
			if n.Error != "" {
				t.Fatalf("peer %s errored: %s", n.Node, n.Error)
			}
			for fam := range n.Ledger {
				families[fam] = true
			}
		}
		// A peer-filled plan may land a family's sample on either the
		// requester or the owner; all three families must appear somewhere.
		if families["fam0"] && families["fam1"] && families["fam2"] {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("fleet ledgers never converged: %v", families)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// ?local=1 answers without fan-out.
	var lr qualityResponse
	getDebugJSON(t, r.https[1].URL+"/debug/quality?local=1", &lr)
	if len(lr.Fleet) != 0 {
		t.Fatalf("?local=1 still fanned out: %d fleet entries", len(lr.Fleet))
	}
	if lr.Node != r.addrs[1] {
		t.Fatalf("local node = %q, want %q", lr.Node, r.addrs[1])
	}
}
