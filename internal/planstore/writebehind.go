package planstore

import (
	"sync"

	"repro/internal/plancache"
)

// WriteBehind layers an in-memory front store (the LRU) over a Log: reads
// hit memory first and fall through to disk (promoting hits back into
// memory); writes land in memory synchronously and are appended to disk by
// a single writer goroutine fed through a bounded non-blocking queue, so
// the plan-cache critical section — which holds the cache mutex across
// Store.Put — never waits on disk I/O. Under sustained pressure the queue
// drops writes rather than blocking (counted; a dropped write only costs a
// future warm-start, never a served response).
//
// WriteBehind implements plancache.Store[V], so the plan cache's
// singleflight and counters sit unchanged on top of the whole hierarchy:
// memory, then disk, then (a miss on both) the ring/pipeline.
type WriteBehind[V any] struct {
	front plancache.Store[V]
	back  *Log[V]

	mu     sync.RWMutex // guards closed vs. sends on ch
	closed bool
	ch     chan wbItem[V]
	done   chan struct{}

	cmu                 sync.Mutex
	promotions, dropped int64
	enqueued            int64
	writerGate          chan struct{} // test hook: non-nil stalls the writer
}

type wbItem[V any] struct {
	key     plancache.Key
	val     V
	put     bool
	flushed chan struct{} // non-nil marks a flush sentinel
}

var _ plancache.Store[int] = (*WriteBehind[int])(nil)

// NewWriteBehind builds the two-tier store and starts its writer
// goroutine. queueLen bounds the write-behind queue (minimum 1).
func NewWriteBehind[V any](front plancache.Store[V], back *Log[V], queueLen int) *WriteBehind[V] {
	return newWriteBehind(front, back, queueLen, nil)
}

// newWriteBehind is the gated variant: a non-nil gate stalls the writer
// goroutine until the gate is fed, letting tests fill the queue
// deterministically. The gate is fixed before the writer starts, so it
// needs no synchronization.
func newWriteBehind[V any](front plancache.Store[V], back *Log[V], queueLen int, gate chan struct{}) *WriteBehind[V] {
	if queueLen < 1 {
		queueLen = 1
	}
	w := &WriteBehind[V]{
		front:      front,
		back:       back,
		ch:         make(chan wbItem[V], queueLen),
		done:       make(chan struct{}),
		writerGate: gate,
	}
	go w.writer()
	return w
}

func (w *WriteBehind[V]) writer() {
	defer close(w.done)
	for item := range w.ch {
		if w.writerGate != nil {
			<-w.writerGate
		}
		if item.flushed != nil {
			w.back.Sync()
			close(item.flushed)
			continue
		}
		if item.put {
			w.back.Put(item.key, item.val)
		}
		// Batch fsync: sync once when the queue drains rather than once
		// per record, amortizing the flush across the burst.
		if w.back.opts.Fsync == FsyncBatch && len(w.ch) == 0 {
			w.back.Sync()
		}
	}
}

// Get serves from memory when it can; on a memory miss it consults disk
// and promotes the hit back into the front store (evictions from that
// promotion are ignored — the displaced entries are still on disk).
func (w *WriteBehind[V]) Get(k plancache.Key) (V, bool) {
	if v, ok := w.front.Get(k); ok {
		return v, true
	}
	v, ok := w.back.Get(k)
	if ok {
		w.front.Put(k, v)
		w.cmu.Lock()
		w.promotions++
		w.cmu.Unlock()
	}
	return v, ok
}

// Put stores into memory and enqueues the disk append. Front-store
// evictions are swallowed (the evicted entries remain readable from disk);
// a full queue drops the disk write and counts it.
func (w *WriteBehind[V]) Put(k plancache.Key, v V) []plancache.Evicted[V] {
	w.front.Put(k, v)
	w.mu.RLock()
	defer w.mu.RUnlock()
	if w.closed {
		return nil
	}
	select {
	case w.ch <- wbItem[V]{key: k, val: v, put: true}:
		w.cmu.Lock()
		w.enqueued++
		w.cmu.Unlock()
	default:
		w.cmu.Lock()
		w.dropped++
		w.cmu.Unlock()
	}
	return nil
}

// Len reports the disk tier's live-record count — the authoritative size
// of the persistent cache (the front store is a subset of it, modulo
// queued writes).
func (w *WriteBehind[V]) Len() int { return w.back.Len() }

// Log exposes the disk tier (for stats, compaction and snapshots).
func (w *WriteBehind[V]) Log() *Log[V] { return w.back }

// Stats reports the write-behind tier's own counters.
func (w *WriteBehind[V]) Stats() (promotions, dropped, enqueued int64, depth int) {
	w.cmu.Lock()
	defer w.cmu.Unlock()
	return w.promotions, w.dropped, w.enqueued, len(w.ch)
}

// Flush blocks until every write enqueued before the call has reached the
// log and been synced. Returns false if the store is closed.
func (w *WriteBehind[V]) Flush() bool {
	w.mu.RLock()
	if w.closed {
		w.mu.RUnlock()
		return false
	}
	sentinel := wbItem[V]{flushed: make(chan struct{})}
	w.ch <- sentinel
	w.mu.RUnlock()
	<-sentinel.flushed
	return true
}

// Close drains the queue, stops the writer and closes the log.
func (w *WriteBehind[V]) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	close(w.ch)
	w.mu.Unlock()
	<-w.done
	return w.back.Close()
}
