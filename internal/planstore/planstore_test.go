package planstore

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"repro/internal/plancache"
	"repro/internal/plancache/storetest"
)

// stringCodec is the test codec: values are their own bytes.
var stringCodec = Codec[string]{
	Encode: func(s string) ([]byte, error) { return []byte(s), nil },
	Decode: func(b []byte) (string, error) { return string(b), nil },
}

func openTestLog(t *testing.T, opts Options) *Log[string] {
	t.Helper()
	if opts.Dir == "" {
		opts.Dir = t.TempDir()
	}
	l, err := Open[string](opts, stringCodec)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { l.Close() })
	return l
}

// TestLogConformance runs the shared Store contract suite against the disk
// tier, in its default shape and with compaction made aggressive enough to
// fire inside the suite's own churn — eviction and compaction must be
// invisible to the contract.
func TestLogConformance(t *testing.T) {
	var n int
	mk := func(opts Options) func(capacity int) plancache.Store[string] {
		return func(capacity int) plancache.Store[string] {
			n++
			o := opts
			o.Dir = filepath.Join(t.TempDir(), fmt.Sprintf("log%d", n))
			o.Capacity = capacity
			l, err := Open[string](o, stringCodec)
			if err != nil {
				t.Fatalf("Open: %v", err)
			}
			t.Cleanup(func() { l.Close() })
			return l
		}
	}
	storetest.RunStore(t, "Log", mk(Options{}))
	storetest.RunStore(t, "LogCompacting", mk(Options{CompactRatio: 0.05, CompactMinBytes: 1}))
	storetest.RunStore(t, "LogFsyncAlways", mk(Options{Fsync: FsyncAlways}))
}

func TestWarmScanRestoresIndex(t *testing.T) {
	dir := t.TempDir()
	l := openTestLog(t, Options{Dir: dir})
	const n = 20
	for i := 0; i < n; i++ {
		l.Put(storetest.Key(fmt.Sprintf("k%d", i)), fmt.Sprintf("v%d", i))
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l2 := openTestLog(t, Options{Dir: dir})
	st := l2.Stats()
	if st.WarmRecords != n || st.Records != n {
		t.Fatalf("warm scan restored %d records (%d warm), want %d", st.Records, st.WarmRecords, n)
	}
	if st.SkippedRecords != 0 {
		t.Fatalf("clean log scan skipped %d records", st.SkippedRecords)
	}
	for i := 0; i < n; i++ {
		v, ok := l2.Get(storetest.Key(fmt.Sprintf("k%d", i)))
		if !ok || v != fmt.Sprintf("v%d", i) {
			t.Fatalf("after restart Get(k%d) = %q, %v", i, v, ok)
		}
	}
}

// TestScanSkipsTornTail is the crash-during-write case: a record torn
// mid-payload (or mid-header) must be skipped and truncated away, with
// everything before the tear served and the skip counted.
func TestScanSkipsTornTail(t *testing.T) {
	for _, cut := range []int64{3, headerSize - 5, headerSize + 1} {
		t.Run(fmt.Sprintf("cut%d", cut), func(t *testing.T) {
			dir := t.TempDir()
			l := openTestLog(t, Options{Dir: dir})
			l.Put(storetest.Key("a"), "alpha")
			l.Put(storetest.Key("b"), "beta")
			l.Put(storetest.Key("c"), "gamma")
			if err := l.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}

			path := filepath.Join(dir, logFileName)
			fi, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			// Tear the last record: leave `cut` bytes of it.
			lastStart := fi.Size() - (headerSize + int64(len("gamma")))
			if err := os.Truncate(path, lastStart+cut); err != nil {
				t.Fatal(err)
			}

			l2 := openTestLog(t, Options{Dir: dir})
			st := l2.Stats()
			if st.SkippedRecords != 1 {
				t.Fatalf("SkippedRecords = %d, want 1", st.SkippedRecords)
			}
			if st.Records != 2 {
				t.Fatalf("Records = %d, want the 2 before the tear", st.Records)
			}
			for k, want := range map[string]string{"a": "alpha", "b": "beta"} {
				if v, ok := l2.Get(storetest.Key(k)); !ok || v != want {
					t.Fatalf("Get(%s) = %q, %v; want %q", k, v, ok, want)
				}
			}
			if _, ok := l2.Get(storetest.Key("c")); ok {
				t.Fatal("torn record still served")
			}
			// The tail was truncated back to the last good record, so new
			// appends land on a clean boundary and survive another restart.
			if fi2, _ := os.Stat(path); fi2.Size() != lastStart {
				t.Fatalf("log size %d after recovery, want %d", fi2.Size(), lastStart)
			}
			l2.Put(storetest.Key("d"), "delta")
			if err := l2.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			l3 := openTestLog(t, Options{Dir: dir})
			if st := l3.Stats(); st.Records != 3 || st.SkippedRecords != 0 {
				t.Fatalf("after re-append: Records = %d, Skipped = %d; want 3, 0", st.Records, st.SkippedRecords)
			}
		})
	}
}

// TestScanSkipsGarbageTail covers tail corruption that is not a clean
// truncation: a wrong magic and a flipped payload bit.
func TestScanSkipsGarbageTail(t *testing.T) {
	dir := t.TempDir()
	l := openTestLog(t, Options{Dir: dir})
	l.Put(storetest.Key("a"), "alpha")
	l.Put(storetest.Key("b"), "beta")
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	path := filepath.Join(dir, logFileName)

	// Flip one bit inside the last record's payload: its CRC fails.
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{'X'}, fi.Size()-1); err != nil {
		t.Fatal(err)
	}
	f.Close()

	l2 := openTestLog(t, Options{Dir: dir})
	if st := l2.Stats(); st.SkippedRecords != 1 || st.Records != 1 {
		t.Fatalf("bit flip: Skipped = %d, Records = %d; want 1, 1", st.SkippedRecords, st.Records)
	}
	if v, ok := l2.Get(storetest.Key("a")); !ok || v != "alpha" {
		t.Fatalf("Get(a) = %q, %v after tail corruption", v, ok)
	}
	l2.Close()
}

func TestScanDropsSchemaMismatch(t *testing.T) {
	dir := t.TempDir()
	l := openTestLog(t, Options{Dir: dir, Schema: 1})
	l.Put(storetest.Key("a"), "alpha")
	l.Put(storetest.Key("b"), "beta")
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l2 := openTestLog(t, Options{Dir: dir, Schema: 2})
	st := l2.Stats()
	if st.Records != 0 || st.SchemaDropped != 2 {
		t.Fatalf("schema bump: Records = %d, SchemaDropped = %d; want 0, 2", st.Records, st.SchemaDropped)
	}
	if st.SkippedRecords != 0 {
		t.Fatalf("schema mismatch counted as corruption: Skipped = %d", st.SkippedRecords)
	}
	// The dropped records are dead bytes; a new put under the new schema
	// coexists until compaction clears them.
	l2.Put(storetest.Key("a"), "alpha-v2")
	if v, ok := l2.Get(storetest.Key("a")); !ok || v != "alpha-v2" {
		t.Fatalf("Get under new schema = %q, %v", v, ok)
	}
	l2.Close()
}

// TestTombstoneSurvivesRestart: a capacity eviction is persisted as a
// tombstone, so the evicted key stays gone after a restart even when the
// restart's capacity would have room for it.
func TestTombstoneSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	l := openTestLog(t, Options{Dir: dir, Capacity: 2})
	l.Put(storetest.Key("k0"), "v0")
	l.Put(storetest.Key("k1"), "v1")
	ev := l.Put(storetest.Key("k2"), "v2") // evicts k0 (LRU)
	if len(ev) != 1 || ev[0].Val != "v0" {
		t.Fatalf("eviction = %v, want k0/v0", ev)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l2 := openTestLog(t, Options{Dir: dir, Capacity: 100})
	if _, ok := l2.Get(storetest.Key("k0")); ok {
		t.Fatal("tombstoned k0 resurrected by restart")
	}
	for _, k := range []string{"k1", "k2"} {
		if _, ok := l2.Get(storetest.Key(k)); !ok {
			t.Fatalf("%s missing after restart", k)
		}
	}
	l2.Close()
}

func TestCompaction(t *testing.T) {
	l := openTestLog(t, Options{CompactRatio: 0.5, CompactMinBytes: 1})
	k := storetest.Key("hot")
	for i := 0; i < 50; i++ {
		l.Put(k, fmt.Sprintf("version-%d", i))
	}
	st := l.Stats()
	if st.Compactions == 0 {
		t.Fatalf("50 supersedes of one key never compacted (dead=%d total=%d)", st.DeadBytes, st.TotalBytes)
	}
	if v, ok := l.Get(k); !ok || v != "version-49" {
		t.Fatalf("Get after compaction = %q, %v", v, ok)
	}

	// A forced compaction (the snapshot path) leaves zero dead bytes and a
	// file of exactly the live records.
	l.Put(k, "final")
	if err := l.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	st = l.Stats()
	if st.DeadBytes != 0 || st.TotalBytes != st.LiveBytes {
		t.Fatalf("after forced compaction: dead=%d total=%d live=%d", st.DeadBytes, st.TotalBytes, st.LiveBytes)
	}

	// The compacted log is a valid snapshot: a fresh scan restores it.
	dir := l.Dir()
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	l2 := openTestLog(t, Options{Dir: dir})
	if v, ok := l2.Get(k); !ok || v != "final" {
		t.Fatalf("Get after compact+restart = %q, %v", v, ok)
	}
	l2.Close()
}

// TestCompactionPreservesRecency: restart after compaction must evict in
// the same LRU order as before it.
func TestCompactionPreservesRecency(t *testing.T) {
	dir := t.TempDir()
	l := openTestLog(t, Options{Dir: dir})
	for i := 0; i < 4; i++ {
		l.Put(storetest.Key(fmt.Sprintf("k%d", i)), fmt.Sprintf("v%d", i))
	}
	l.Get(storetest.Key("k0")) // k0 becomes most recent; k1 is now LRU
	if err := l.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	l2 := openTestLog(t, Options{Dir: dir, Capacity: 3})
	if _, ok := l2.Get(storetest.Key("k1")); ok {
		t.Fatal("capacity 3 restart kept k1, which was LRU at compaction time")
	}
	if _, ok := l2.Get(storetest.Key("k0")); !ok {
		t.Fatal("capacity 3 restart dropped k0, which was MRU at compaction time")
	}
	l2.Close()
}

func TestWriteBehindPromotion(t *testing.T) {
	back := openTestLog(t, Options{})
	wb := NewWriteBehind[string](plancache.NewMemStore[string](1), back, 16)
	defer wb.Close()

	wb.Put(storetest.Key("k1"), "v1")
	wb.Put(storetest.Key("k2"), "v2") // displaces k1 from the 1-entry front
	if !wb.Flush() {
		t.Fatal("Flush on an open store returned false")
	}
	if v, ok := wb.Get(storetest.Key("k1")); !ok || v != "v1" {
		t.Fatalf("memory-evicted k1: Get = %q, %v; want the disk copy", v, ok)
	}
	promotions, dropped, enqueued, _ := wb.Stats()
	if promotions != 1 {
		t.Fatalf("promotions = %d, want 1", promotions)
	}
	if dropped != 0 || enqueued != 2 {
		t.Fatalf("dropped = %d, enqueued = %d; want 0, 2", dropped, enqueued)
	}
	// The promotion put k1 back in the 1-entry front: the next Get must be
	// a pure memory hit (promotions stays 1).
	if _, ok := wb.Get(storetest.Key("k1")); !ok {
		t.Fatal("promoted k1 not in memory")
	}
	if p, _, _, _ := wb.Stats(); p != 1 {
		t.Fatalf("second Get promoted again: promotions = %d", p)
	}
}

// TestWriteBehindDropOnPressure: with the writer stalled and the queue
// full, Put drops the disk write (counted) instead of blocking the caller.
func TestWriteBehindDropOnPressure(t *testing.T) {
	back := openTestLog(t, Options{})
	gate := make(chan struct{})
	wb := newWriteBehind[string](plancache.NewMemStore[string](8), back, 1, gate)

	wb.Put(storetest.Key("q1"), "v1") // writer picks this up and stalls on the gate
	for {                             // wait for the writer to hold q1, emptying the queue
		if _, _, _, depth := wb.Stats(); depth == 0 {
			break
		}
		runtime.Gosched()
	}
	wb.Put(storetest.Key("q2"), "v2") // sits in the 1-slot queue
	wb.Put(storetest.Key("q3"), "v3") // queue full: dropped

	// The dropped write never reaches disk, but the caller still sees it:
	// it stayed in the front store.
	if v, ok := wb.Get(storetest.Key("q3")); !ok || v != "v3" {
		t.Fatalf("dropped write lost from memory: Get = %q, %v", v, ok)
	}
	_, dropped, _, _ := wb.Stats()
	if dropped < 1 {
		t.Fatalf("dropped = %d, want >= 1", dropped)
	}
	close(gate)
	wb.Flush()
	if _, ok := back.Get(storetest.Key("q3")); ok {
		t.Fatal("dropped write reached disk anyway")
	}
	if _, ok := back.Get(storetest.Key("q2")); !ok {
		t.Fatal("queued write q2 never reached disk")
	}
	if err := wb.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestWriteBehindCloseIdempotent(t *testing.T) {
	back := openTestLog(t, Options{})
	wb := NewWriteBehind[string](plancache.NewMemStore[string](8), back, 4)
	wb.Put(storetest.Key("a"), "v")
	if err := wb.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := wb.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if wb.Flush() {
		t.Fatal("Flush on a closed store returned true")
	}
	// Put after Close must not panic (send on closed channel): the write
	// is simply not persisted.
	wb.Put(storetest.Key("b"), "v2")
}

func TestParseFsyncPolicy(t *testing.T) {
	for in, want := range map[string]FsyncPolicy{"always": FsyncAlways, "batch": FsyncBatch, "never": FsyncNever} {
		got, err := ParseFsyncPolicy(in)
		if err != nil || got != want {
			t.Fatalf("ParseFsyncPolicy(%q) = %v, %v", in, got, err)
		}
		if got.String() != in {
			t.Fatalf("String() = %q, want %q", got.String(), in)
		}
	}
	if _, err := ParseFsyncPolicy("sometimes"); err == nil {
		t.Fatal("ParseFsyncPolicy accepted garbage")
	}
}

func TestOpenRejectsBadConfig(t *testing.T) {
	if _, err := Open[string](Options{}, stringCodec); err == nil {
		t.Fatal("Open without Dir succeeded")
	}
	if _, err := Open[string](Options{Dir: t.TempDir()}, Codec[string]{}); err == nil {
		t.Fatal("Open without codec funcs succeeded")
	}
}

// BenchmarkWarmScan measures the startup scan: an N-record log opened into
// a fully verified in-memory index. Reported as records/s plus the scan's
// allocation footprint — the warm-start path a restarted daemon pays
// before it can serve.
func BenchmarkWarmScan(b *testing.B) {
	const records = 2048
	dir := b.TempDir()
	l, err := Open[string](Options{Dir: dir}, stringCodec)
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 256)
	for i := range payload {
		payload[i] = byte('a' + i%26)
	}
	for i := 0; i < records; i++ {
		l.Put(storetest.Key(fmt.Sprintf("bench-%d", i)), string(payload))
	}
	if err := l.Close(); err != nil {
		b.Fatal(err)
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l, err := Open[string](Options{Dir: dir}, stringCodec)
		if err != nil {
			b.Fatal(err)
		}
		if l.Stats().WarmRecords != records {
			b.Fatalf("warm scan restored %d records", l.Stats().WarmRecords)
		}
		l.Close()
	}
	b.StopTimer()
	b.ReportMetric(float64(records)*float64(b.N)/b.Elapsed().Seconds(), "records/s")
}
