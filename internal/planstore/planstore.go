// Package planstore is the disk-backed second tier of the plan cache: a
// content-addressed append-only log that survives daemon restarts, so a
// rebooted cachemapd warm-starts with every plan it ever computed instead
// of re-paying the tags→similarity→cluster pipeline per hot key (the
// ROADMAP's "persistent warm-start plan store"; decomposition as a
// preservable runtime artifact, after Paulino & Delgado).
//
// The Log implements the pluggable plancache.Store seam, so it composes
// with the memoization layer — and with the in-memory LRU via WriteBehind
// (see writebehind.go) — without touching singleflight or counters.
//
// On-disk format (all integers little-endian), one file Dir/plans.log:
//
//	record  := header payload
//	header  := magic(4) payloadLen(4) schema(4) flags(4) key(32) crc32c(4)
//	payload := payloadLen opaque bytes (the codec's encoding of the value)
//
// The CRC32C (Castagnoli) covers payloadLen through key plus the payload,
// so a torn header, a torn payload and a bit flip are all detected. A
// record for an already-present key supersedes the earlier one (append-only
// update); flag bit 0 marks a tombstone (payloadLen 0), written when
// capacity pressure evicts a key so the eviction survives restart.
//
// Crash recovery is the startup scan: Open reads the log sequentially,
// verifying every checksum, rebuilding the in-memory key→offset index, and
// — at the first truncated or corrupt record — counts the torn tail as
// skipped, truncates the file back to the last good record and serves
// everything before it. Records whose value schema version differs from
// Options.Schema are well-formed but unreadable by this build; the scan
// drops them (counted separately) and their bytes become dead.
//
// Superseded records, tombstones and schema-dropped records accumulate as
// dead bytes; when they exceed CompactRatio of the file, Put rewrites the
// live records into a fresh log and atomically renames it into place
// (Compact forces the same rewrite — the snapshot operation behind
// POST /debug/cache/snapshot; restoring a snapshot is just the normal
// startup scan).
//
// The Log is safe for concurrent use. It assumes one process per
// directory, like any log-structured store.
package planstore

import (
	"bufio"
	"container/list"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/plancache"
)

// FsyncPolicy selects when appended records are forced to stable storage.
// The zero value is FsyncBatch.
type FsyncPolicy int

const (
	// FsyncBatch syncs once per drained write-behind batch (see
	// WriteBehind): bounded data loss on power failure, near-zero fsync
	// cost under load. Process crashes (kill -9) lose nothing under any
	// policy — appended bytes live in the OS page cache.
	FsyncBatch FsyncPolicy = iota
	// FsyncAlways syncs after every appended record: no loss window, one
	// fsync per plan.
	FsyncAlways
	// FsyncNever leaves flushing entirely to the OS.
	FsyncNever
)

// ParseFsyncPolicy parses the -store-fsync flag spelling.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "batch":
		return FsyncBatch, nil
	case "always":
		return FsyncAlways, nil
	case "never":
		return FsyncNever, nil
	}
	return 0, fmt.Errorf("planstore: unknown fsync policy %q (want always, batch or never)", s)
}

func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncNever:
		return "never"
	default:
		return "batch"
	}
}

// Codec encodes and decodes values for the log's opaque payloads.
type Codec[V any] struct {
	Encode func(V) ([]byte, error)
	Decode func([]byte) (V, error)
}

// Options parameterizes Open.
type Options struct {
	// Dir is the store directory (created if absent). Required.
	Dir string
	// Capacity bounds live records; least recently used entries beyond it
	// are evicted with a persisted tombstone. 0 = unbounded.
	Capacity int
	// Schema is the value schema version stamped into every record; the
	// startup scan drops records written under any other version.
	Schema uint32
	// Fsync selects the durability policy (default FsyncBatch).
	Fsync FsyncPolicy
	// CompactRatio is the dead/total byte ratio above which an append
	// triggers compaction (default 0.5; negative disables automatic
	// compaction — Compact still works).
	CompactRatio float64
	// CompactMinBytes is the log size below which automatic compaction
	// never runs (default 64 KiB).
	CompactMinBytes int64
	// MaxValueBytes is the scan's sanity bound on payload length; a header
	// declaring more is treated as corruption (default 16 MiB).
	MaxValueBytes int
}

func (o *Options) applyDefaults() {
	if o.CompactRatio == 0 {
		o.CompactRatio = 0.5
	}
	if o.CompactMinBytes == 0 {
		o.CompactMinBytes = 64 << 10
	}
	if o.MaxValueBytes == 0 {
		o.MaxValueBytes = 16 << 20
	}
}

// Stats is a snapshot of the log's cumulative and current state.
type Stats struct {
	// Records is the number of live (indexed) records.
	Records int
	// WarmRecords is the number of records the startup scan restored.
	WarmRecords int
	// LiveBytes and DeadBytes partition the log file; TotalBytes is their
	// sum (the file size).
	LiveBytes, DeadBytes, TotalBytes int64
	// SkippedRecords counts truncated/corrupt tail records the startup
	// scan skipped (the crash-recovery path).
	SkippedRecords int64
	// SchemaDropped counts well-formed records dropped because their value
	// schema version differs from this build's.
	SchemaDropped int64
	// Appends counts records appended (including tombstones).
	Appends int64
	// Evictions counts live records displaced by capacity pressure.
	Evictions int64
	// Compactions counts live-record rewrites (automatic and forced).
	Compactions int64
	// Syncs counts explicit fsyncs of the log file.
	Syncs int64
	// ReadErrors counts Get-path failures (I/O, checksum, decode); each is
	// served as a miss rather than an error.
	ReadErrors int64
	// EncodeErrors and WriteErrors count Put-path failures; each drops the
	// Put (the store stays consistent, the entry is simply not persisted).
	EncodeErrors, WriteErrors int64
}

const (
	logFileName = "plans.log"

	recMagic   = uint32(0x314C5350) // "PSL1" little-endian
	headerSize = 52

	offMagic   = 0
	offLen     = 4
	offSchema  = 8
	offFlags   = 12
	offKey     = 16
	offCRC     = 48
	crcedStart = offLen // CRC covers [payloadLen, crc) + payload

	flagTombstone = uint32(1)
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// rec is one live record's index entry.
type rec struct {
	key plancache.Key
	off int64 // file offset of the record header
	n   int   // payload length
}

func (r *rec) size() int64 { return headerSize + int64(r.n) }

// Log is the disk tier: an append-only record log with an in-memory
// key→offset index rebuilt by the startup scan. It implements
// plancache.Store[V].
type Log[V any] struct {
	mu    sync.Mutex
	opts  Options
	codec Codec[V]
	path  string
	f     *os.File

	size int64 // append position (file length up to the last good record)
	dead int64 // bytes held by superseded records, tombstones and drops

	index map[plancache.Key]*list.Element
	ll    *list.List // front = most recently used; values are *rec

	warm                                  int
	skipped, schemaDropped                int64
	appends, evictions, compactions       int64
	syncs, readErrors, encodeErrs, wrErrs int64
}

var _ plancache.Store[int] = (*Log[int])(nil)

// Open opens (creating if absent) the log in opts.Dir and rebuilds its
// index with the verifying startup scan. A torn or corrupt tail is
// skipped and truncated away, never an error; only real I/O and
// configuration problems fail Open.
func Open[V any](opts Options, codec Codec[V]) (*Log[V], error) {
	if opts.Dir == "" {
		return nil, errors.New("planstore: Options.Dir is required")
	}
	if codec.Encode == nil || codec.Decode == nil {
		return nil, errors.New("planstore: Codec.Encode and Codec.Decode are required")
	}
	opts.applyDefaults()
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("planstore: %w", err)
	}
	path := filepath.Join(opts.Dir, logFileName)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("planstore: %w", err)
	}
	l := &Log[V]{
		opts:  opts,
		codec: codec,
		path:  path,
		f:     f,
		index: make(map[plancache.Key]*list.Element),
		ll:    list.New(),
	}
	if err := l.scan(); err != nil {
		f.Close()
		return nil, fmt.Errorf("planstore: scanning %s: %w", path, err)
	}
	l.warm = len(l.index)
	// A capacity shrunk between runs evicts the scan's least recent
	// extras, exactly as a Put would.
	for l.opts.Capacity > 0 && l.ll.Len() > l.opts.Capacity {
		l.evictOldestLocked()
	}
	return l, nil
}

// scan rebuilds the index from the log, verifying every record's checksum.
// The first truncated or corrupt record marks the torn tail: it is counted
// as skipped, the file is truncated back to the last good record, and the
// scan stops — everything before the tear is served.
func (l *Log[V]) scan() error {
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	r := bufio.NewReaderSize(l.f, 1<<16)
	hdr := make([]byte, headerSize)
	var payload []byte
	var off int64
	torn := false
	for {
		if n, err := io.ReadFull(r, hdr); err != nil {
			if n == 0 && err == io.EOF {
				break // clean end of log
			}
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				torn = true
				break
			}
			return err
		}
		plen := int(binary.LittleEndian.Uint32(hdr[offLen:]))
		if binary.LittleEndian.Uint32(hdr[offMagic:]) != recMagic || plen > l.opts.MaxValueBytes {
			torn = true
			break
		}
		if cap(payload) < plen {
			payload = make([]byte, plen+plen/2)
		}
		payload = payload[:plen]
		if _, err := io.ReadFull(r, payload); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				torn = true
				break
			}
			return err
		}
		crc := crc32.Update(crc32.Checksum(hdr[crcedStart:offCRC], castagnoli), castagnoli, payload)
		if crc != binary.LittleEndian.Uint32(hdr[offCRC:]) {
			torn = true
			break
		}

		recSize := int64(headerSize + plen)
		schema := binary.LittleEndian.Uint32(hdr[offSchema:])
		flags := binary.LittleEndian.Uint32(hdr[offFlags:])
		var key plancache.Key
		copy(key[:], hdr[offKey:offKey+32])
		switch {
		case schema != l.opts.Schema:
			l.schemaDropped++
			l.dead += recSize
		case flags&flagTombstone != 0:
			if el, ok := l.index[key]; ok {
				l.dead += el.Value.(*rec).size()
				l.ll.Remove(el)
				delete(l.index, key)
			}
			l.dead += recSize
		default:
			if el, ok := l.index[key]; ok {
				old := el.Value.(*rec)
				l.dead += old.size()
				old.off, old.n = off, plen
				l.ll.MoveToFront(el)
			} else {
				l.index[key] = l.ll.PushFront(&rec{key: key, off: off, n: plen})
			}
		}
		off += recSize
	}
	if torn {
		l.skipped++
		if err := l.f.Truncate(off); err != nil {
			return err
		}
	}
	l.size = off
	return nil
}

// Get returns the stored value for k, if present, refreshing its recency.
// Any read-path failure (I/O, checksum, decode) counts as a read error and
// serves as a miss: the caller recomputes, it never sees a broken plan.
func (l *Log[V]) Get(k plancache.Key) (V, bool) {
	var zero V
	l.mu.Lock()
	defer l.mu.Unlock()
	el, ok := l.index[k]
	if !ok {
		return zero, false
	}
	v, err := l.readLocked(el.Value.(*rec))
	if err != nil {
		l.readErrors++
		return zero, false
	}
	l.ll.MoveToFront(el)
	return v, true
}

// readLocked reads and decodes one indexed record, re-verifying its
// checksum (the scan verified it once; disks rot).
func (l *Log[V]) readLocked(rc *rec) (V, error) {
	var zero V
	buf := make([]byte, rc.size())
	if _, err := l.f.ReadAt(buf, rc.off); err != nil {
		return zero, err
	}
	crc := crc32.Update(crc32.Checksum(buf[crcedStart:offCRC], castagnoli), castagnoli, buf[headerSize:])
	if binary.LittleEndian.Uint32(buf[offMagic:]) != recMagic ||
		crc != binary.LittleEndian.Uint32(buf[offCRC:]) {
		return zero, fmt.Errorf("record at offset %d failed its checksum", rc.off)
	}
	return l.codec.Decode(buf[headerSize:])
}

// Put appends (or supersedes) k → v and returns entries evicted by
// capacity pressure. Encode or write failures drop the Put (counted); the
// index never references bytes that were not fully appended.
func (l *Log[V]) Put(k plancache.Key, v V) []plancache.Evicted[V] {
	payload, err := l.codec.Encode(v)
	if err != nil {
		l.mu.Lock()
		l.encodeErrs++
		l.mu.Unlock()
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	off, err := l.appendLocked(k, payload, 0)
	if err != nil {
		l.wrErrs++
		return nil
	}
	if el, ok := l.index[k]; ok {
		old := el.Value.(*rec)
		l.dead += old.size()
		old.off, old.n = off, len(payload)
		l.ll.MoveToFront(el)
	} else {
		l.index[k] = l.ll.PushFront(&rec{key: k, off: off, n: len(payload)})
	}
	var evicted []plancache.Evicted[V]
	for l.opts.Capacity > 0 && l.ll.Len() > l.opts.Capacity {
		if e, ok := l.evictOldestLocked(); ok {
			evicted = append(evicted, e)
		}
	}
	l.maybeCompactLocked()
	return evicted
}

// appendLocked writes one record at the current end of the log and returns
// its offset. With FsyncAlways the record is synced before it is indexed.
func (l *Log[V]) appendLocked(k plancache.Key, payload []byte, flags uint32) (int64, error) {
	buf := make([]byte, headerSize+len(payload))
	binary.LittleEndian.PutUint32(buf[offMagic:], recMagic)
	binary.LittleEndian.PutUint32(buf[offLen:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[offSchema:], l.opts.Schema)
	binary.LittleEndian.PutUint32(buf[offFlags:], flags)
	copy(buf[offKey:], k[:])
	copy(buf[headerSize:], payload)
	crc := crc32.Update(crc32.Checksum(buf[crcedStart:offCRC], castagnoli), castagnoli, payload)
	binary.LittleEndian.PutUint32(buf[offCRC:], crc)
	off := l.size
	if _, err := l.f.WriteAt(buf, off); err != nil {
		return 0, err
	}
	l.size += int64(len(buf))
	l.appends++
	if l.opts.Fsync == FsyncAlways {
		if err := l.f.Sync(); err != nil {
			return 0, err
		}
		l.syncs++
	}
	return off, nil
}

// evictOldestLocked displaces the least recently used record: its value is
// read back for the Evicted report, the index entry is dropped, and a
// tombstone is appended so the eviction survives restart. ok is false when
// the displaced value could not be read (it is still evicted).
func (l *Log[V]) evictOldestLocked() (plancache.Evicted[V], bool) {
	el := l.ll.Back()
	rc := el.Value.(*rec)
	v, err := l.readLocked(rc)
	l.ll.Remove(el)
	delete(l.index, rc.key)
	l.dead += rc.size()
	l.evictions++
	if toff, terr := l.appendLocked(rc.key, nil, flagTombstone); terr == nil {
		l.dead += l.size - toff
	} else {
		l.wrErrs++
	}
	if err != nil {
		l.readErrors++
		return plancache.Evicted[V]{}, false
	}
	return plancache.Evicted[V]{Key: rc.key, Val: v}, true
}

// maybeCompactLocked compacts when dead bytes dominate a non-trivial log.
func (l *Log[V]) maybeCompactLocked() {
	if l.opts.CompactRatio < 0 || l.size < l.opts.CompactMinBytes {
		return
	}
	if float64(l.dead) > l.opts.CompactRatio*float64(l.size) {
		l.compactLocked()
	}
}

// Compact forces a live-record rewrite: the log shrinks to exactly its
// live records, atomically (write new file, fsync, rename over). This is
// the snapshot operation — the resulting file is a clean, checksummed,
// immediately warm-scannable image of the store.
func (l *Log[V]) Compact() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.compactLocked()
}

func (l *Log[V]) compactLocked() error {
	tmpPath := l.path + ".compact"
	tf, err := os.OpenFile(tmpPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		l.wrErrs++
		return err
	}
	fail := func(err error) error {
		tf.Close()
		os.Remove(tmpPath)
		l.wrErrs++
		return err
	}
	// Live records are copied verbatim (checksums are content-only, so
	// they stay valid), oldest-first: the restart scan pushes each onto
	// the recency list in file order, reproducing today's LRU order.
	var off int64
	newOff := make(map[*rec]int64, len(l.index))
	for el := l.ll.Back(); el != nil; el = el.Prev() {
		rc := el.Value.(*rec)
		buf := make([]byte, rc.size())
		if _, err := l.f.ReadAt(buf, rc.off); err != nil {
			return fail(err)
		}
		if _, err := tf.WriteAt(buf, off); err != nil {
			return fail(err)
		}
		newOff[rc] = off
		off += rc.size()
	}
	if err := tf.Sync(); err != nil {
		return fail(err)
	}
	if err := os.Rename(tmpPath, l.path); err != nil {
		return fail(err)
	}
	syncDir(l.opts.Dir)
	l.f.Close()
	l.f = tf
	for rc, o := range newOff {
		rc.off = o
	}
	l.size = off
	l.dead = 0
	l.compactions++
	l.syncs++
	return nil
}

// syncDir best-effort fsyncs a directory so a rename is durable.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}

// Sync forces appended records to stable storage.
func (l *Log[V]) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.f.Sync(); err != nil {
		return err
	}
	l.syncs++
	return nil
}

// Len returns the number of live records.
func (l *Log[V]) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.index)
}

// Dir returns the store directory.
func (l *Log[V]) Dir() string { return l.opts.Dir }

// Stats returns a snapshot of the log's state and cumulative counters.
func (l *Log[V]) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Stats{
		Records:        len(l.index),
		WarmRecords:    l.warm,
		LiveBytes:      l.size - l.dead,
		DeadBytes:      l.dead,
		TotalBytes:     l.size,
		SkippedRecords: l.skipped,
		SchemaDropped:  l.schemaDropped,
		Appends:        l.appends,
		Evictions:      l.evictions,
		Compactions:    l.compactions,
		Syncs:          l.syncs,
		ReadErrors:     l.readErrors,
		EncodeErrors:   l.encodeErrs,
		WriteErrors:    l.wrErrs,
	}
}

// Close syncs and closes the log file.
func (l *Log[V]) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	serr := l.f.Sync()
	cerr := l.f.Close()
	if serr != nil {
		return serr
	}
	return cerr
}
