package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// SpanData is one completed span as retained and served by the store.
type SpanData struct {
	Name     string    `json:"name"`
	SpanID   string    `json:"span_id"`
	ParentID string    `json:"parent_id,omitempty"`
	Start    time.Time `json:"start"`
	// DurationNS is the span's wall time in nanoseconds.
	DurationNS int64  `json:"duration_ns"`
	Attrs      []Attr `json:"attrs,omitempty"`
}

// Trace is one completed request trace: the root span's identity plus
// every span recorded before the root ended (root span last).
type Trace struct {
	TraceID string    `json:"trace_id"`
	Root    string    `json:"root"`
	Start   time.Time `json:"start"`
	// DurationNS is the root span's wall time in nanoseconds.
	DurationNS int64      `json:"duration_ns"`
	Spans      []SpanData `json:"spans"`
}

// SpanStore retains the most recent completed traces in a fixed-size ring
// buffer: memory stays bounded regardless of request volume, old traces
// are overwritten in arrival order. Safe for concurrent use.
type SpanStore struct {
	mu    sync.Mutex
	buf   []*Trace
	next  int
	total uint64
}

// NewSpanStore returns a store retaining up to capacity traces
// (capacity < 1 is raised to 1).
func NewSpanStore(capacity int) *SpanStore {
	if capacity < 1 {
		capacity = 1
	}
	return &SpanStore{buf: make([]*Trace, 0, capacity)}
}

// Add retains t, evicting the oldest retained trace when full.
func (s *SpanStore) Add(t *Trace) {
	s.mu.Lock()
	if len(s.buf) < cap(s.buf) {
		s.buf = append(s.buf, t)
	} else {
		s.buf[s.next] = t
		s.next = (s.next + 1) % cap(s.buf)
	}
	s.total++
	s.mu.Unlock()
}

// Capacity returns the maximum number of retained traces.
func (s *SpanStore) Capacity() int { return cap(s.buf) }

// Len returns the number of currently retained traces.
func (s *SpanStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.buf)
}

// TotalAdded returns the cumulative number of traces ever added.
func (s *SpanStore) TotalAdded() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}

// Traces returns the retained traces with duration >= min, newest first.
func (s *SpanStore) Traces(min time.Duration) []*Trace {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Trace, 0, len(s.buf))
	// Newest-first: walk backward from the slot before next.
	for i := 0; i < len(s.buf); i++ {
		j := (s.next - 1 - i + 2*len(s.buf)) % len(s.buf)
		if len(s.buf) < cap(s.buf) {
			// Not yet wrapped: buf[0:len] is oldest→newest.
			j = len(s.buf) - 1 - i
		}
		if t := s.buf[j]; t.DurationNS >= min.Nanoseconds() {
			out = append(out, t)
		}
	}
	return out
}

// Get returns the retained trace with the given ID.
func (s *SpanStore) Get(traceID string) (*Trace, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, t := range s.buf {
		if t.TraceID == traceID {
			return t, true
		}
	}
	return nil, false
}

// chromeEvent is one Chrome trace_event "complete" (ph=X) event.
type chromeEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`  // microseconds from trace start
	Dur  float64           `json:"dur"` // microseconds
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// WriteChrome renders the trace in the Chrome trace_event JSON format
// (an object with a "traceEvents" array of ph="X" complete events),
// loadable in chrome://tracing and Perfetto. Timestamps are microseconds
// relative to the trace start.
func (t *Trace) WriteChrome(w io.Writer) error {
	events := make([]chromeEvent, 0, len(t.Spans))
	base := t.Start
	for _, sp := range t.Spans {
		args := map[string]string{"span_id": sp.SpanID}
		if sp.ParentID != "" {
			args["parent_id"] = sp.ParentID
		}
		for _, a := range sp.Attrs {
			args[a.Key] = a.Value
		}
		events = append(events, chromeEvent{
			Name: sp.Name,
			Ph:   "X",
			Ts:   float64(sp.Start.Sub(base).Nanoseconds()) / 1e3,
			Dur:  float64(sp.DurationNS) / 1e3,
			Pid:  1,
			Tid:  1,
			Args: args,
		})
	}
	out := struct {
		TraceEvents     []chromeEvent     `json:"traceEvents"`
		DisplayTimeUnit string            `json:"displayTimeUnit"`
		Metadata        map[string]string `json:"metadata,omitempty"`
	}{
		TraceEvents:     events,
		DisplayTimeUnit: "ms",
		Metadata:        map[string]string{"trace_id": t.TraceID, "root": t.Root},
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(out); err != nil {
		return fmt.Errorf("obs: encoding chrome trace: %w", err)
	}
	return nil
}
