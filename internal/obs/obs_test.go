package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestTraceParentRoundTrip(t *testing.T) {
	tc := NewTraceContext()
	h := tc.TraceParent()
	got, ok := ParseTraceParent(h)
	if !ok {
		t.Fatalf("ParseTraceParent(%q) not ok", h)
	}
	if got != tc {
		t.Fatalf("round trip: got %+v, want %+v", got, tc)
	}
}

func TestParseTraceParentRejectsMalformed(t *testing.T) {
	cases := []string{
		"",
		"00",
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7",     // missing flags
		"01-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",  // wrong version
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01",  // zero trace id
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01",  // zero span id
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902zz-01",  // non-hex
		"00-4bf92f3577b34da6a3ce929d0e0e4736--00f067aa0ba902b7-01", // bad layout
	}
	for _, h := range cases {
		if _, ok := ParseTraceParent(h); ok {
			t.Errorf("ParseTraceParent(%q) accepted", h)
		}
	}
	good := "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	tc, ok := ParseTraceParent(good)
	if !ok || tc.TraceID.String() != "4bf92f3577b34da6a3ce929d0e0e4736" ||
		tc.SpanID.String() != "00f067aa0ba902b7" || !tc.Sampled {
		t.Fatalf("ParseTraceParent(%q) = %+v, %v", good, tc, ok)
	}
}

func TestRootAndChildSpansPublishOneTrace(t *testing.T) {
	store := NewSpanStore(4)
	tr := NewTracer(store)

	ctx, root := tr.StartRoot(context.Background(), "req", TraceContext{})
	if root == nil {
		t.Fatal("nil root span")
	}
	root.SetAttr("k", "v")

	cctx, child := StartSpan(ctx, "child")
	_, grand := StartSpan(cctx, "grandchild")
	grand.End()
	child.End()
	Record(cctx, "ledger", time.Now().Add(-time.Millisecond), time.Millisecond, String("phase", "x"))

	if store.Len() != 0 {
		t.Fatalf("trace published before root ended: %d", store.Len())
	}
	root.End()
	if store.Len() != 1 {
		t.Fatalf("store holds %d traces, want 1", store.Len())
	}
	trace, ok := store.Get(root.TraceID().String())
	if !ok {
		t.Fatal("trace not retrievable by ID")
	}
	if trace.Root != "req" {
		t.Fatalf("root name %q", trace.Root)
	}
	if len(trace.Spans) != 4 {
		t.Fatalf("got %d spans, want 4: %+v", len(trace.Spans), trace.Spans)
	}
	byName := map[string]SpanData{}
	for _, sp := range trace.Spans {
		byName[sp.Name] = sp
	}
	rootSD := byName["req"]
	if byName["child"].ParentID != rootSD.SpanID {
		t.Fatalf("child parent %q, want root %q", byName["child"].ParentID, rootSD.SpanID)
	}
	if byName["grandchild"].ParentID != byName["child"].SpanID {
		t.Fatal("grandchild not parented under child")
	}
	if byName["ledger"].ParentID != byName["child"].SpanID {
		t.Fatal("recorded span not parented under the active span")
	}
	if byName["ledger"].DurationNS != time.Millisecond.Nanoseconds() {
		t.Fatalf("recorded span duration %d, want exactly 1ms", byName["ledger"].DurationNS)
	}
	// Root ends last.
	if trace.Spans[len(trace.Spans)-1].Name != "req" {
		t.Fatal("root span is not last")
	}
	if rootSD.Attrs[0] != (Attr{Key: "k", Value: "v"}) {
		t.Fatalf("root attrs %+v", rootSD.Attrs)
	}
}

func TestStartRootAdoptsRemoteContext(t *testing.T) {
	remote, _ := ParseTraceParent("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	store := NewSpanStore(1)
	_, root := NewTracer(store).StartRoot(context.Background(), "req", remote)
	if got := root.TraceID().String(); got != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Fatalf("trace id %s", got)
	}
	root.End()
	trace, _ := store.Get("4bf92f3577b34da6a3ce929d0e0e4736")
	if trace.Spans[0].ParentID != "00f067aa0ba902b7" {
		t.Fatalf("root parent %q, want the remote span", trace.Spans[0].ParentID)
	}
}

// TestDisabledTracingZeroAlloc is the hot-path bound: with no active span
// in the context (tracer disabled), starting/ending spans and recording
// ledger spans must not allocate.
func TestDisabledTracingZeroAlloc(t *testing.T) {
	ctx := context.Background()
	var nilTracer *Tracer
	allocs := testing.AllocsPerRun(1000, func() {
		c2, sp := StartSpan(ctx, "x")
		sp.SetAttr("k", "v")
		sp.End()
		Record(c2, "y", time.Time{}, time.Millisecond)
		_, rp := nilTracer.StartRoot(ctx, "r", TraceContext{})
		rp.End()
	})
	if allocs != 0 {
		t.Fatalf("disabled tracing allocates %.1f per op, want 0", allocs)
	}
}

func BenchmarkDisabledSpanStartEnd(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c2, sp := StartSpan(ctx, "x")
		sp.End()
		Record(c2, "y", time.Time{}, 0)
	}
}

func BenchmarkEnabledSpanStartEnd(b *testing.B) {
	tr := NewTracer(NewSpanStore(16))
	ctx, root := tr.StartRoot(context.Background(), "req", TraceContext{})
	defer root.End()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, sp := StartSpan(ctx, "x")
		sp.End()
	}
}

// TestSpanStoreBounded drives 10× the ring capacity through the store and
// requires retention (and therefore memory) to stay capped, keeping the
// newest traces.
func TestSpanStoreBounded(t *testing.T) {
	const capacity = 16
	store := NewSpanStore(capacity)
	tr := NewTracer(store)
	for i := 0; i < 10*capacity; i++ {
		_, root := tr.StartRoot(context.Background(), fmt.Sprintf("req-%d", i), TraceContext{})
		root.End()
	}
	if store.Len() != capacity {
		t.Fatalf("store len %d, want %d", store.Len(), capacity)
	}
	if store.TotalAdded() != 10*capacity {
		t.Fatalf("total added %d", store.TotalAdded())
	}
	got := store.Traces(0)
	if len(got) != capacity {
		t.Fatalf("Traces returned %d", len(got))
	}
	// Newest first, and only the last `capacity` survive.
	for i, tc := range got {
		want := fmt.Sprintf("req-%d", 10*capacity-1-i)
		if tc.Root != want {
			t.Fatalf("Traces[%d] = %s, want %s", i, tc.Root, want)
		}
	}
}

func TestTracesMinDurationFilter(t *testing.T) {
	store := NewSpanStore(8)
	slow := &Trace{TraceID: "a", Root: "slow", DurationNS: (50 * time.Millisecond).Nanoseconds()}
	fast := &Trace{TraceID: "b", Root: "fast", DurationNS: (1 * time.Millisecond).Nanoseconds()}
	store.Add(slow)
	store.Add(fast)
	got := store.Traces(10 * time.Millisecond)
	if len(got) != 1 || got[0].Root != "slow" {
		t.Fatalf("filtered traces: %+v", got)
	}
}

func TestChromeExportParsesAndNests(t *testing.T) {
	store := NewSpanStore(1)
	tr := NewTracer(store)
	ctx, root := tr.StartRoot(context.Background(), "req", TraceContext{})
	cctx, child := StartSpan(ctx, "child")
	_, grand := StartSpan(cctx, "grand")
	time.Sleep(time.Millisecond)
	grand.End()
	child.End()
	root.End()

	trace, _ := store.Get(root.TraceID().String())
	var buf bytes.Buffer
	if err := trace.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			Ts   float64           `json:"ts"`
			Dur  float64           `json:"dur"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(out.TraceEvents) != 3 {
		t.Fatalf("%d events, want 3", len(out.TraceEvents))
	}
	byName := map[string]int{}
	for i, ev := range out.TraceEvents {
		if ev.Ph != "X" {
			t.Fatalf("event %s has ph %q", ev.Name, ev.Ph)
		}
		byName[ev.Name] = i
	}
	// ts/dur nesting: child within root, grand within child.
	within := func(inner, outer string) {
		in, out2 := out.TraceEvents[byName[inner]], out.TraceEvents[byName[outer]]
		if in.Ts < out2.Ts || in.Ts+in.Dur > out2.Ts+out2.Dur+0.001 {
			t.Fatalf("%s [%f,%f] not nested in %s [%f,%f]",
				inner, in.Ts, in.Ts+in.Dur, outer, out2.Ts, out2.Ts+out2.Dur)
		}
	}
	within("child", "req")
	within("grand", "child")
	if !strings.Contains(buf.String(), trace.TraceID) {
		t.Fatal("export lacks the trace id")
	}
}

func TestNilSafety(t *testing.T) {
	var sp *Span
	sp.SetAttr("k", "v")
	sp.End()
	if !sp.TraceID().IsZero() || !sp.SpanID().IsZero() {
		t.Fatal("nil span has non-zero IDs")
	}
	var tr *Tracer
	if tr.Store() != nil {
		t.Fatal("nil tracer has a store")
	}
	ctx, root := tr.StartRoot(context.Background(), "r", TraceContext{})
	if root != nil || SpanFromContext(ctx) != nil {
		t.Fatal("nil tracer minted a span")
	}
}
