// Package obs is a dependency-free request-tracing layer for the serving
// subsystem: spans (name, attributes, start/end, parent), context
// propagation, W3C traceparent interop, and a fixed-size ring buffer of
// completed traces that the daemon serves at /debug/traces.
//
// The design optimizes for the disabled case: code under instrumentation
// calls StartSpan / Record unconditionally, and when the context carries
// no active span (no tracer, or an untraced entry point) those calls are
// a single context.Value lookup — zero allocations on the hot path. A
// *Span may therefore be nil; all its methods are nil-safe no-ops.
//
// A trace is assembled incrementally: the root span (minted by
// Tracer.StartRoot, once per request) owns a per-trace accumulator, child
// spans append themselves to it when they end, and when the root span
// ends the completed trace is published to the tracer's SpanStore.
package obs

import (
	"context"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math/rand/v2"
	"sync"
	"time"
)

// TraceID identifies one request's trace (16 bytes, per W3C trace-context).
type TraceID [16]byte

// SpanID identifies one span within a trace (8 bytes).
type SpanID [8]byte

// String returns the lowercase-hex form of the trace ID.
func (id TraceID) String() string { return hex.EncodeToString(id[:]) }

// IsZero reports whether the ID is the invalid all-zero value.
func (id TraceID) IsZero() bool { return id == TraceID{} }

// String returns the lowercase-hex form of the span ID.
func (id SpanID) String() string { return hex.EncodeToString(id[:]) }

// IsZero reports whether the ID is the invalid all-zero value.
func (id SpanID) IsZero() bool { return id == SpanID{} }

func newTraceID() TraceID {
	var id TraceID
	for id.IsZero() {
		binary.BigEndian.PutUint64(id[:8], rand.Uint64())
		binary.BigEndian.PutUint64(id[8:], rand.Uint64())
	}
	return id
}

func newSpanID() SpanID {
	var id SpanID
	for id.IsZero() {
		binary.BigEndian.PutUint64(id[:], rand.Uint64())
	}
	return id
}

// TraceContext is the wire identity of a trace position: the pair a W3C
// `traceparent` header carries. The zero value means "no incoming trace".
type TraceContext struct {
	TraceID TraceID
	SpanID  SpanID
	Sampled bool
}

// NewTraceContext mints a fresh trace identity, for callers (such as load
// generators) that originate traces rather than continue them.
func NewTraceContext() TraceContext {
	return TraceContext{TraceID: newTraceID(), SpanID: newSpanID(), Sampled: true}
}

// TraceParent renders the context as a version-00 W3C traceparent header
// value: "00-{trace-id}-{parent-id}-{flags}".
func (tc TraceContext) TraceParent() string {
	flags := "00"
	if tc.Sampled {
		flags = "01"
	}
	return fmt.Sprintf("00-%s-%s-%s", tc.TraceID, tc.SpanID, flags)
}

// ParseTraceParent parses a W3C traceparent header value. It accepts only
// version 00 with non-zero IDs; ok is false (and the zero TraceContext is
// returned) for anything malformed, so callers can pass the raw header
// through unconditionally.
func ParseTraceParent(h string) (tc TraceContext, ok bool) {
	// 00-{32 hex}-{16 hex}-{2 hex}
	if len(h) != 55 || h[0] != '0' || h[1] != '0' || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return TraceContext{}, false
	}
	if _, err := hex.Decode(tc.TraceID[:], []byte(h[3:35])); err != nil {
		return TraceContext{}, false
	}
	if _, err := hex.Decode(tc.SpanID[:], []byte(h[36:52])); err != nil {
		return TraceContext{}, false
	}
	var flags [1]byte
	if _, err := hex.Decode(flags[:], []byte(h[53:55])); err != nil {
		return TraceContext{}, false
	}
	if tc.TraceID.IsZero() || tc.SpanID.IsZero() {
		return TraceContext{}, false
	}
	tc.Sampled = flags[0]&0x01 != 0
	return tc, true
}

// Attr is one span attribute.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// String builds an Attr (mirrors slog.String).
func String(key, value string) Attr { return Attr{Key: key, Value: value} }

// trace accumulates the spans of one trace until its root span ends.
type trace struct {
	mu    sync.Mutex
	id    TraceID
	store *SpanStore
	spans []SpanData
	root  *Span
	done  bool
}

// finish publishes the completed trace; caller holds t.mu.
func (t *trace) finish() *Trace {
	t.done = true
	root := t.spans[len(t.spans)-1] // the root span ends last by construction
	return &Trace{
		TraceID:    t.id.String(),
		Root:       root.Name,
		Start:      root.Start,
		DurationNS: root.DurationNS,
		Spans:      t.spans,
	}
}

// Span is one live (not yet ended) span. A nil *Span is valid and inert.
// A Span is owned by the goroutine that started it: SetAttr and End must
// not race with each other, but distinct spans of one trace may start and
// end concurrently.
type Span struct {
	t      *trace
	name   string
	spanID SpanID
	parent SpanID
	start  time.Time
	attrs  []Attr
}

// TraceID returns the ID of the trace the span belongs to.
func (s *Span) TraceID() TraceID {
	if s == nil {
		return TraceID{}
	}
	return s.t.id
}

// SpanID returns the span's own ID.
func (s *Span) SpanID() SpanID {
	if s == nil {
		return SpanID{}
	}
	return s.spanID
}

// SetAttr attaches a key/value attribute. Nil-safe.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
}

// End completes the span at time.Now. Ending the root span publishes the
// whole trace to the tracer's SpanStore; spans ending after their root
// are dropped. Nil-safe.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.endAt(time.Now())
}

func (s *Span) endAt(end time.Time) {
	t := s.t
	sd := SpanData{
		Name:       s.name,
		SpanID:     s.spanID.String(),
		Start:      s.start,
		DurationNS: end.Sub(s.start).Nanoseconds(),
		Attrs:      s.attrs,
	}
	if !s.parent.IsZero() {
		sd.ParentID = s.parent.String()
	}
	var done *Trace
	t.mu.Lock()
	if !t.done {
		t.spans = append(t.spans, sd)
		if s == t.root {
			done = t.finish()
		}
	}
	t.mu.Unlock()
	if done != nil && t.store != nil {
		t.store.Add(done)
	}
}

type spanKey struct{}

// SpanFromContext returns the active span carried by ctx, or nil.
func SpanFromContext(ctx context.Context) *Span {
	sp, _ := ctx.Value(spanKey{}).(*Span)
	return sp
}

// ContextWithSpan returns ctx carrying sp as the active span.
func ContextWithSpan(ctx context.Context, sp *Span) context.Context {
	return context.WithValue(ctx, spanKey{}, sp)
}

// StartSpan begins a child of the active span in ctx and returns a context
// carrying it. When ctx carries no span (tracing disabled or an untraced
// entry point) it returns (ctx, nil) without allocating.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent := SpanFromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	sp := &Span{
		t:      parent.t,
		name:   name,
		spanID: newSpanID(),
		parent: parent.spanID,
		start:  time.Now(),
	}
	return ContextWithSpan(ctx, sp), sp
}

// Record attaches an already-measured span (explicit start and duration)
// under the active span in ctx. It exists for code that has its own
// ledger of phase timings — the recorded span matches the ledger exactly
// instead of re-measuring. No-op (and allocation-free when called without
// attrs) when ctx carries no span.
func Record(ctx context.Context, name string, start time.Time, d time.Duration, attrs ...Attr) {
	parent := SpanFromContext(ctx)
	if parent == nil {
		return
	}
	sd := SpanData{
		Name:       name,
		SpanID:     newSpanID().String(),
		ParentID:   parent.spanID.String(),
		Start:      start,
		DurationNS: d.Nanoseconds(),
		Attrs:      attrs,
	}
	t := parent.t
	t.mu.Lock()
	if !t.done {
		t.spans = append(t.spans, sd)
	}
	t.mu.Unlock()
}

// Tracer mints root spans and publishes completed traces to its store. A
// nil *Tracer is valid and disables tracing entirely.
type Tracer struct {
	store *SpanStore
}

// NewTracer returns a tracer publishing completed traces to store (which
// may be nil to trace without retention).
func NewTracer(store *SpanStore) *Tracer { return &Tracer{store: store} }

// Store returns the tracer's span store (nil for a nil tracer).
func (t *Tracer) Store() *SpanStore {
	if t == nil {
		return nil
	}
	return t.store
}

// StartRoot begins a new trace rooted at name. With a valid remote
// context (an ingested traceparent) the trace adopts the remote trace ID
// and the root span records the remote span as its parent; otherwise a
// fresh trace ID is minted. On a nil tracer it returns (ctx, nil).
func (t *Tracer) StartRoot(ctx context.Context, name string, remote TraceContext) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	id := remote.TraceID
	var parent SpanID
	if id.IsZero() {
		id = newTraceID()
	} else {
		parent = remote.SpanID
	}
	tr := &trace{id: id, store: t.store}
	sp := &Span{
		t:      tr,
		name:   name,
		spanID: newSpanID(),
		parent: parent,
		start:  time.Now(),
	}
	tr.root = sp
	return ContextWithSpan(ctx, sp), sp
}
