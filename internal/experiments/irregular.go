package experiments

import (
	"repro/internal/pipeline"
	"repro/internal/workloads"
)

// IrregularRow is one scheme's result on the irregular-mesh workload.
type IrregularRow struct {
	Scheme string
	IOMS   float64
	Norm   float64 // vs original
	L1Miss float64
}

// IrregularStudy exercises the future-work extension: mapping a loop with
// indirection-based (unstructured mesh) accesses. Because the index tables
// feed the tag computation directly, the inter-processor schemes cluster
// the true chunk footprint and should beat the original block mapping.
func IrregularStudy(base Config) ([]IrregularRow, error) {
	w := workloads.Irregular(base.Scale, 7)
	var rows []IrregularRow
	var origIO float64
	for _, s := range pipeline.Schemes() {
		m, err := base.Run(w, s)
		if err != nil {
			return nil, err
		}
		if s == pipeline.Original {
			origIO = m.IOLatencyMS()
		}
		rows = append(rows, IrregularRow{
			Scheme: string(s),
			IOMS:   m.IOLatencyMS(),
			Norm:   ratio(m.IOLatencyMS(), origIO),
			L1Miss: m.MissRateL(1),
		})
	}
	return rows, nil
}
