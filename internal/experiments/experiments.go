// Package experiments reproduces every table and figure of the paper's
// evaluation (Section 5): per-application storage cache miss rates, I/O
// latencies and execution times under the original, intra-processor and
// inter-processor mappings, plus the sensitivity studies (topology, cache
// capacity, data chunk size) and the Section 5.4 enhancements (scheduling,
// α/β weights, dependences, multi-nest).
//
// Results are returned as plain structs so the cmd/experiments tool, the
// benchmark harness and EXPERIMENTS.md all report the same rows the paper
// plots.
package experiments

import (
	"context"

	"fmt"

	"repro/internal/cache"
	"repro/internal/hierarchy"
	"repro/internal/iosim"
	"repro/internal/pipeline"
	"repro/internal/workloads"
)

// Config is the platform configuration of one experiment — the scaled
// analogue of the paper's Table 1.
type Config struct {
	// Topology (w, x, y): client, I/O and storage node counts.
	Clients, IONodes, StorageNodes int
	// Per-node storage cache capacities in data chunks (client, I/O,
	// storage order — the paper's W, X, Y knob of Figure 13).
	CacheL1, CacheL2, CacheL3 int
	// Data chunk size in bytes (Figure 14 knob).
	ChunkBytes int64
	// Workload scale divisor (1 = evaluation size).
	Scale int
	// BalanceThreshold for the distribution algorithm (paper: 10%).
	BalanceThreshold float64
	// Alpha and Beta weigh the Figure 15 scheduler.
	Alpha, Beta float64
	// Platform timing model.
	Params iosim.Params
}

// DefaultConfig mirrors Table 1 at the documented 1:16 scale: 64 client
// nodes, 32 I/O nodes, 16 storage nodes, 4 KB chunks (standing for 64 KB),
// LRU everywhere. Per-node cache capacities (4, 8, 16 chunks for client,
// I/O and storage nodes) keep the per-client cache share constant at every
// level — the calibration that best preserves the paper's cache-pressure
// ratios at this scale (see DESIGN.md).
func DefaultConfig() Config {
	return Config{
		Clients:          64,
		IONodes:          32,
		StorageNodes:     16,
		CacheL1:          4,
		CacheL2:          8,
		CacheL3:          16,
		ChunkBytes:       workloads.DefaultChunkBytes,
		Scale:            1,
		BalanceThreshold: 0.10,
		Alpha:            0.5,
		Beta:             0.5,
		Params:           iosim.DefaultParams(),
	}
}

// Tree builds the storage cache hierarchy tree for the configuration.
func (c Config) Tree() *hierarchy.Tree {
	return hierarchy.NewLayered(
		hierarchy.LayerSpec{Count: c.StorageNodes, CacheChunks: c.CacheL3, Label: "SN"},
		hierarchy.LayerSpec{Count: c.IONodes, CacheChunks: c.CacheL2, Label: "IO"},
		hierarchy.LayerSpec{Count: c.Clients, CacheChunks: c.CacheL1, Label: "CN"},
	)
}

func (c Config) mappingConfig(tree *hierarchy.Tree) pipeline.Config {
	cfg := pipeline.Config{Tree: tree}
	cfg.Options.BalanceThreshold = c.BalanceThreshold
	cfg.Schedule.Alpha = c.Alpha
	cfg.Schedule.Beta = c.Beta
	return cfg
}

// Run maps and simulates one workload under one scheme. The
// intra-processor baseline follows the paper's protocol of trying several
// tile sizes and keeping the best-performing one.
func (c Config) Run(w workloads.Workload, scheme pipeline.Scheme) (*iosim.Metrics, error) {
	m, _, err := c.RunDetailed(w, scheme)
	return m, err
}

// RunDetailed is Run, additionally returning the staged planner's
// per-stage timing breakdown for the mapping that produced the metrics.
func (c Config) RunDetailed(w workloads.Workload, scheme pipeline.Scheme) (*iosim.Metrics, []pipeline.StageTiming, error) {
	if c.ChunkBytes != w.Prog.Data.ChunkBytes {
		w = w.WithChunkBytes(c.ChunkBytes)
	}
	if scheme == pipeline.IntraProcessor {
		return c.runIntraBest(w)
	}
	tree := c.Tree()
	res, err := pipeline.Map(context.Background(), scheme, w.Prog, c.mappingConfig(tree))
	if err != nil {
		return nil, nil, fmt.Errorf("experiments: %s/%s: %w", w.Name, scheme, err)
	}
	m, err := iosim.Run(tree, w.Prog, res.Assignment, c.Params)
	if err != nil {
		return nil, nil, fmt.Errorf("experiments: %s/%s: %w", w.Name, scheme, err)
	}
	return m, res.Stages, nil
}

// runIntraBest evaluates the intra-processor candidate orders (heuristic
// tiles, a few uniform tile sizes, untiled) and returns the metrics of the
// best candidate by I/O latency — the paper's tile-size selection protocol.
// All candidates come from one pipeline run, so they share one breakdown.
func (c Config) runIntraBest(w workloads.Workload) (*iosim.Metrics, []pipeline.StageTiming, error) {
	tree := c.Tree()
	cands, err := pipeline.MapIntraCandidates(context.Background(), w.Prog, c.mappingConfig(tree), 8, 32)
	if err != nil {
		return nil, nil, fmt.Errorf("experiments: %s/intra: %w", w.Name, err)
	}
	var best *iosim.Metrics
	var stages []pipeline.StageTiming
	for _, res := range cands {
		m, err := iosim.Run(c.Tree(), w.Prog, res.Assignment, c.Params)
		if err != nil {
			return nil, nil, fmt.Errorf("experiments: %s/intra: %w", w.Name, err)
		}
		if best == nil || m.IOLatencyMS() < best.IOLatencyMS() {
			best, stages = m, res.Stages
		}
	}
	return best, stages, nil
}

// Apps loads the eight applications at the configured scale.
func (c Config) Apps() ([]workloads.Workload, error) { return workloads.All(c.Scale) }

// AppMetrics bundles one application's metrics under one scheme.
type AppMetrics struct {
	App     string
	Scheme  pipeline.Scheme
	Metrics *iosim.Metrics
}

// RunAll maps and simulates every application under the given schemes.
func (c Config) RunAll(schemes ...pipeline.Scheme) ([]AppMetrics, error) {
	apps, err := c.Apps()
	if err != nil {
		return nil, err
	}
	var out []AppMetrics
	for _, w := range apps {
		for _, s := range schemes {
			m, err := c.Run(w, s)
			if err != nil {
				return nil, err
			}
			out = append(out, AppMetrics{App: w.Name, Scheme: s, Metrics: m})
		}
	}
	return out, nil
}

// ratio returns v/base, guarding against a zero base.
func ratio(v, base float64) float64 {
	if base == 0 {
		return 0
	}
	return v / base
}

// GeoMeanImprovement converts normalized values (fractions of the original)
// to the mean improvement percentage, as the paper reports.
func GeoMeanImprovement(normalized []float64) float64 {
	if len(normalized) == 0 {
		return 0
	}
	var sum float64
	for _, v := range normalized {
		sum += v
	}
	return (1 - sum/float64(len(normalized))) * 100
}

// Policy returns the cache policy label of the config.
func (c Config) Policy() cache.PolicyKind { return c.Params.Policy }
