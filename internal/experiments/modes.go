package experiments

import (
	"repro/internal/iosim"
	"repro/internal/pipeline"
)

// ModeRow is one cache-management-mode ablation point: the hierarchy mode
// applied to both the original and the inter-processor mapping.
type ModeRow struct {
	Mode       string
	OrigIOMS   float64 // mean over apps, absolute
	InterIOMS  float64
	Norm       float64 // mean normalized inter I/O (vs original, same mode)
	Prefetches int64
}

// CacheModeStudy evaluates the inclusive/exclusive caching modes and
// server-side sequential prefetching from the paper's related work (Wong &
// Wilkes exclusive caching; AMP/TaP-style readahead): the mapping's benefit
// should persist under every mode — it shapes which clients share data,
// which is orthogonal to how the caches manage it.
func CacheModeStudy(base Config) ([]ModeRow, error) {
	modes := []struct {
		name   string
		mutate func(*iosim.Params)
	}{
		{"inclusive", func(p *iosim.Params) {}},
		{"exclusive", func(p *iosim.Params) { p.Exclusive = true }},
		{"cooperative", func(p *iosim.Params) { p.Cooperative = true }},
		{"prefetch(4)", func(p *iosim.Params) { p.PrefetchDepth = 4 }},
		{"exclusive+prefetch", func(p *iosim.Params) { p.Exclusive = true; p.PrefetchDepth = 4 }},
	}
	apps, err := base.Apps()
	if err != nil {
		return nil, err
	}
	var rows []ModeRow
	for _, mode := range modes {
		cfg := base
		mode.mutate(&cfg.Params)
		var origSum, interSum, normSum float64
		var prefetches int64
		for _, w := range apps {
			orig, err := cfg.Run(w, pipeline.Original)
			if err != nil {
				return nil, err
			}
			inter, err := cfg.Run(w, pipeline.InterProcessor)
			if err != nil {
				return nil, err
			}
			origSum += orig.IOLatencyMS()
			interSum += inter.IOLatencyMS()
			normSum += ratio(inter.IOLatencyMS(), orig.IOLatencyMS())
			prefetches += orig.Prefetches + inter.Prefetches
		}
		n := float64(len(apps))
		rows = append(rows, ModeRow{
			Mode:       mode.name,
			OrigIOMS:   origSum / n,
			InterIOMS:  interSum / n,
			Norm:       normSum / n,
			Prefetches: prefetches,
		})
	}
	return rows, nil
}
