package experiments

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/pipeline"
)

// Claim is one verifiable shape statement from the paper's evaluation: not
// an absolute number, but an ordering or direction that must survive the
// change of platform. EXPERIMENTS.md documents each; ShapeChecks verifies
// them mechanically so reproduction fidelity is itself tested.
type Claim struct {
	ID          string
	Description string
	Holds       bool
	Detail      string
}

// ShapeChecks runs the evaluation and verifies the paper's headline shape
// claims.
func ShapeChecks(cfg Config) ([]Claim, error) {
	base, err := RunBaseline(cfg)
	if err != nil {
		return nil, err
	}
	f10 := base.Figure10()
	f11 := base.Figure11()
	f18 := base.Figure18()

	mean := func(pick func(i int) float64) float64 {
		var s float64
		for i := range f11 {
			s += pick(i)
		}
		return s / float64(len(f11))
	}
	interIO := mean(func(i int) float64 { return f11[i].InterIO })
	intraIO := mean(func(i int) float64 { return f11[i].IntraIO })
	interExec := mean(func(i int) float64 { return f11[i].InterExec })
	intraExec := mean(func(i int) float64 { return f11[i].IntraExec })
	schedIO := mean(func(i int) float64 { return f18[i].IO })
	schedL1 := mean(func(i int) float64 { return f18[i].L1Miss })
	interL1 := mean(func(i int) float64 { return f18[i].InterL1 })
	intraL1 := mean(func(i int) float64 { return f10[i].IntraL1 })
	intraL2 := mean(func(i int) float64 { return f10[i].IntraL2 })
	intraL3 := mean(func(i int) float64 { return f10[i].IntraL3 })

	var claims []Claim
	add := func(id, desc string, holds bool, detail string) {
		claims = append(claims, Claim{ID: id, Description: desc, Holds: holds, Detail: detail})
	}

	add("fig11-io-order",
		"inter-processor beats intra-processor beats nothing on mean I/O latency",
		interIO < intraIO && intraIO <= 1.001,
		fmt.Sprintf("inter %.2f < intra %.2f <= 1", interIO, intraIO))
	add("fig11-exec-order",
		"the same ordering holds for execution time",
		interExec < intraExec && intraExec <= 1.001,
		fmt.Sprintf("inter %.2f < intra %.2f <= 1", interExec, intraExec))
	add("fig11-exec-discount",
		"execution-time gains are smaller than I/O gains (compute is unaffected)",
		interExec >= interIO-0.001,
		fmt.Sprintf("exec %.2f >= I/O %.2f", interExec, interIO))
	add("fig10-intra-local-only",
		"the intra-processor scheme improves only client-local (L1) behaviour",
		intraL1 <= intraL2+0.05 && intraL1 <= intraL3+0.05,
		fmt.Sprintf("intra L1 %.2f vs L2 %.2f, L3 %.2f", intraL1, intraL2, intraL3))
	add("fig18-sched-io",
		"the scheduling enhancement improves mean I/O over plain inter",
		schedIO <= interIO+0.001,
		fmt.Sprintf("sched %.2f <= inter %.2f", schedIO, interIO))
	add("fig18-sched-l1",
		"the scheduling enhancement does not lose L1 locality vs plain inter",
		schedL1 <= interL1+0.02,
		fmt.Sprintf("sched L1 %.2f <= inter L1 %.2f", schedL1, interL1))

	// α/β: equal weights no worse than either extreme.
	ab, err := AlphaBetaSweep(cfg, [][2]float64{{0, 1}, {0.5, 0.5}, {1, 0}})
	if err != nil {
		return nil, err
	}
	add("alphabeta-equal-best",
		"equal scheduler weights perform at least as well as either extreme",
		ab[1].MeanIO <= ab[0].MeanIO+0.01 && ab[1].MeanIO <= ab[2].MeanIO+0.01,
		fmt.Sprintf("(0.5,0.5) %.3f vs (0,1) %.3f, (1,0) %.3f", ab[1].MeanIO, ab[0].MeanIO, ab[2].MeanIO))

	// Policy robustness: the mapping helps under every policy.
	pol, err := PolicyAblation(cfg, []cache.PolicyKind{cache.LRU, cache.FIFO, cache.CLOCK, cache.MQ})
	if err != nil {
		return nil, err
	}
	holds := true
	detail := ""
	for _, r := range pol {
		if r.MeanIO >= 1 {
			holds = false
		}
		detail += fmt.Sprintf("%s %.2f ", r.Policy, r.MeanIO)
	}
	add("policy-robust", "the mapping improves mean I/O under every cache policy", holds, detail)

	// Dependence strategies.
	dep, err := DependenceStudy(cfg)
	if err != nil {
		return nil, err
	}
	add("dep-merge-no-sync",
		"the merge strategy needs no inter-processor synchronization",
		dep[0].SyncEdges == 0, fmt.Sprintf("merge edges = %d", dep[0].SyncEdges))
	add("dep-sync-parallel",
		"the sync strategy keeps parallelism at the cost of sync edges",
		dep[1].SyncEdges > 0 && dep[1].Exec < 1,
		fmt.Sprintf("sync edges = %d, exec %.2f", dep[1].SyncEdges, dep[1].Exec))

	// Irregular extension.
	irr, err := IrregularStudy(cfg)
	if err != nil {
		return nil, err
	}
	var irrInter float64
	for _, r := range irr {
		if r.Scheme == string(pipeline.InterProcessor) {
			irrInter = r.Norm
		}
	}
	add("irregular-improves",
		"the mapping improves irregular (indirection-based) loops too",
		irrInter < 1, fmt.Sprintf("inter norm %.2f", irrInter))

	return claims, nil
}
