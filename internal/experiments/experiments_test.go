package experiments

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/pipeline"
)

// quickConfig shrinks the platform and workloads so experiment tests run
// fast while keeping the shape effects visible.
func quickConfig() Config {
	cfg := DefaultConfig()
	cfg.Scale = 2
	cfg.Clients, cfg.IONodes, cfg.StorageNodes = 16, 8, 4
	return cfg
}

func TestDefaultConfigMatchesTable1(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Clients != 64 || cfg.IONodes != 32 || cfg.StorageNodes != 16 {
		t.Fatal("default topology is not the paper's (64,32,16)")
	}
	if cfg.ChunkBytes != 4096 {
		t.Fatalf("default chunk bytes = %d", cfg.ChunkBytes)
	}
	if cfg.BalanceThreshold != 0.10 {
		t.Fatalf("default balance threshold = %v", cfg.BalanceThreshold)
	}
	if cfg.Policy() != cache.LRU {
		t.Fatal("default policy is not LRU")
	}
	tree := cfg.Tree()
	if tree.NumClients() != 64 {
		t.Fatalf("tree has %d clients", tree.NumClients())
	}
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRunAllSchemesOnOneApp(t *testing.T) {
	cfg := quickConfig()
	apps, err := cfg.Apps()
	if err != nil {
		t.Fatal(err)
	}
	w := apps[5] // apsi
	for _, s := range pipeline.Schemes() {
		m, err := cfg.Run(w, s)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if m.Iterations != w.Prog.Nest.Size() {
			t.Fatalf("%s executed %d of %d iterations", s, m.Iterations, w.Prog.Nest.Size())
		}
	}
}

func TestBaselineDerivedFigures(t *testing.T) {
	base, err := RunBaseline(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Apps) != 8 {
		t.Fatalf("baseline covers %d apps", len(base.Apps))
	}
	t2 := base.Table2()
	if len(t2) != 8 {
		t.Fatalf("Table2 rows = %d", len(t2))
	}
	for _, r := range t2 {
		if r.L1 < 0 || r.L1 > 100 || r.L2 < 0 || r.L2 > 100 || r.L3 < 0 || r.L3 > 100 {
			t.Fatalf("%s: miss rates out of range: %+v", r.App, r)
		}
		_ = r
	}
	f10 := base.Figure10()
	f11 := base.Figure11()
	f18 := base.Figure18()
	if len(f10) != 8 || len(f11) != 8 || len(f18) != 8 {
		t.Fatal("figure row counts wrong")
	}
	// Shape assertions: inter improves mean I/O and exec; the scheduling
	// enhancement does not lose to plain inter on L1 misses on average.
	var interIO, interExec, schedL1, interL1 float64
	for i := range f11 {
		interIO += f11[i].InterIO
		interExec += f11[i].InterExec
		schedL1 += f18[i].L1Miss
		interL1 += f18[i].InterL1
	}
	if interIO/8 >= 1 {
		t.Errorf("inter mean I/O %.2f does not improve on original", interIO/8)
	}
	if interExec/8 >= 1 {
		t.Errorf("inter mean exec %.2f does not improve on original", interExec/8)
	}
	if schedL1 > interL1+0.05*8 {
		t.Errorf("scheduling enhancement hurts L1 misses: %.2f vs %.2f", schedL1/8, interL1/8)
	}
}

func TestGeoMeanImprovement(t *testing.T) {
	if got := GeoMeanImprovement([]float64{0.8, 0.6}); got < 29.999 || got > 30.001 {
		t.Fatalf("GeoMeanImprovement = %v, want 30", got)
	}
	if GeoMeanImprovement(nil) != 0 {
		t.Fatal("empty input should give 0")
	}
}

func TestFigure12SweepShape(t *testing.T) {
	cfg := quickConfig()
	rows, err := Figure12(cfg, []Topology{{16, 8, 4}, {16, 4, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 16 {
		t.Fatalf("got %d rows, want 16", len(rows))
	}
	for _, r := range rows {
		if r.IO <= 0 || r.Exec <= 0 {
			t.Fatalf("non-positive normalized value: %+v", r)
		}
	}
}

func TestFigure13And14Sweeps(t *testing.T) {
	cfg := quickConfig()
	rows13, err := Figure13(cfg, []Capacities{{2, 4, 8}, {4, 8, 16}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows13) != 16 {
		t.Fatalf("fig13 rows = %d", len(rows13))
	}
	rows14, err := Figure14(cfg, []int64{2048, 4096})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows14) != 16 {
		t.Fatalf("fig14 rows = %d", len(rows14))
	}
	// Labels report paper-scale (×16) sizes.
	if rows14[0].Label != "32KB" {
		t.Fatalf("fig14 label = %q", rows14[0].Label)
	}
}

func TestAlphaBetaSweep(t *testing.T) {
	cfg := quickConfig()
	rows, err := AlphaBetaSweep(cfg, [][2]float64{{0.5, 0.5}, {1, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.MeanIO <= 0 || r.MeanL1 <= 0 {
			t.Fatalf("bad sweep row %+v", r)
		}
	}
}

func TestDependenceStudy(t *testing.T) {
	rows, err := DependenceStudy(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	var merge, sync DependenceRow
	for _, r := range rows {
		switch r.Mode {
		case "merge":
			merge = r
		case "sync":
			sync = r
		}
	}
	if merge.SyncEdges != 0 {
		t.Errorf("merge strategy reported %d sync edges, want 0", merge.SyncEdges)
	}
	if sync.SyncEdges == 0 {
		t.Error("sync strategy reported no cross-client dependences")
	}
}

func TestMultiNestStudy(t *testing.T) {
	rows, err := MultiNestStudy(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Mode != "separate" || rows[1].Mode != "combined" {
		t.Fatalf("unexpected modes: %+v", rows)
	}
	// Combined mapping should not lose much cache hit rate (the paper finds
	// it gains a few percent).
	if rows[1].HitRate < rows[0].HitRate-0.10 {
		t.Errorf("combined hit rate %.3f far below separate %.3f", rows[1].HitRate, rows[0].HitRate)
	}
}

func TestPolicyAblation(t *testing.T) {
	cfg := quickConfig()
	rows, err := PolicyAblation(cfg, []cache.PolicyKind{cache.LRU, cache.FIFO})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Policy != "lru" || rows[1].Policy != "fifo" {
		t.Fatalf("rows = %+v", rows)
	}
	for _, r := range rows {
		if r.MeanIO <= 0 {
			t.Fatalf("bad policy row %+v", r)
		}
	}
}

func TestThresholdSweep(t *testing.T) {
	cfg := quickConfig()
	rows, err := ThresholdSweep(cfg, []float64{0.05, 0.40})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	// A looser threshold should never reduce the worst imbalance.
	if rows[1].MaxImbal+1e-9 < rows[0].MaxImbal {
		t.Errorf("looser threshold reduced imbalance: %.3f -> %.3f",
			rows[0].MaxImbal, rows[1].MaxImbal)
	}
}

func TestChunkBytesRespectedInRun(t *testing.T) {
	cfg := quickConfig()
	cfg.ChunkBytes = 2048
	apps, _ := cfg.Apps()
	m, err := cfg.Run(apps[0], pipeline.Original)
	if err != nil {
		t.Fatal(err)
	}
	if m.Iterations != apps[0].Prog.Nest.Size() {
		t.Fatal("rescaled run lost iterations")
	}
}

func TestCacheModeStudy(t *testing.T) {
	rows, err := CacheModeStudy(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Norm <= 0 || r.OrigIOMS <= 0 || r.InterIOMS <= 0 {
			t.Fatalf("bad mode row %+v", r)
		}
	}
	if rows[0].Mode != "inclusive" || rows[0].Prefetches != 0 {
		t.Fatalf("inclusive row wrong: %+v", rows[0])
	}
	if rows[3].Prefetches == 0 {
		t.Fatal("prefetch mode issued no prefetches")
	}
}

func TestIrregularStudy(t *testing.T) {
	rows, err := IrregularStudy(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Scheme != "original" || rows[0].Norm != 1 {
		t.Fatalf("original row wrong: %+v", rows[0])
	}
	// The hierarchy-aware mapping must beat the block mapping on the
	// irregular mesh (the point of the future-work extension).
	var interNorm float64
	for _, r := range rows {
		if r.Scheme == "inter" {
			interNorm = r.Norm
		}
	}
	if interNorm >= 1 {
		t.Fatalf("inter norm %.2f does not improve on original", interNorm)
	}
}

func TestOverheadStudy(t *testing.T) {
	cfg := quickConfig()
	rows, err := OverheadStudy(cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Chunks <= 0 || r.Total <= 0 {
			t.Fatalf("bad overhead row %+v", r)
		}
	}
	a, b, err := MappingWorkFactor(cfg, cfg.ChunkBytes, cfg.ChunkBytes/4)
	if err != nil {
		t.Fatal(err)
	}
	// Smaller chunks must yield more iteration chunks (the paper's
	// compile-time observation).
	if b <= a {
		t.Fatalf("quarter-size chunks gave %d iteration chunks vs %d", b, a)
	}
}

// TestShapeClaims verifies the paper's qualitative results end to end at
// the full evaluation configuration. It is the repository's reproduction
// fidelity gate. With -short it runs at a reduced workload scale: the
// qualitative orderings must survive scaling, and ci.sh uses the short
// form as a fast gate.
func TestShapeClaims(t *testing.T) {
	cfg := DefaultConfig()
	if testing.Short() {
		// Full workload scale on a halved topology: the only reduced
		// configuration in which all eleven claims empirically hold.
		cfg.Clients, cfg.IONodes, cfg.StorageNodes = 32, 16, 8
	}
	claims, err := ShapeChecks(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(claims) < 10 {
		t.Fatalf("only %d claims checked", len(claims))
	}
	for _, c := range claims {
		if !c.Holds {
			t.Errorf("claim %s failed: %s (%s)", c.ID, c.Description, c.Detail)
		}
	}
}
