package experiments

import (
	"context"

	"fmt"

	"repro/internal/cache"
	"repro/internal/chunking"
	"repro/internal/iosim"
	"repro/internal/pipeline"
	"repro/internal/polyhedral"
)

// Baseline holds the default-configuration runs of every application under
// every scheme; Table 2 and Figures 10, 11 and 18 all derive from it.
type Baseline struct {
	Config Config
	// ByApp[app][scheme]
	ByApp map[string]map[pipeline.Scheme]*iosim.Metrics
	Apps  []string
}

// RunBaseline executes all applications under all four schemes.
func RunBaseline(cfg Config) (*Baseline, error) {
	all, err := cfg.RunAll(pipeline.Schemes()...)
	if err != nil {
		return nil, err
	}
	b := &Baseline{Config: cfg, ByApp: make(map[string]map[pipeline.Scheme]*iosim.Metrics)}
	for _, am := range all {
		if b.ByApp[am.App] == nil {
			b.ByApp[am.App] = make(map[pipeline.Scheme]*iosim.Metrics)
			b.Apps = append(b.Apps, am.App)
		}
		b.ByApp[am.App][am.Scheme] = am.Metrics
	}
	return b, nil
}

// Table2Row is one application's absolute miss rates under the original
// version (the paper's Table 2).
type Table2Row struct {
	App        string
	L1, L2, L3 float64 // percent
}

// Table2 reports the original version's per-level miss rates.
func (b *Baseline) Table2() []Table2Row {
	var rows []Table2Row
	for _, app := range b.Apps {
		m := b.ByApp[app][pipeline.Original]
		rows = append(rows, Table2Row{
			App: app,
			L1:  m.MissRateL(1) * 100,
			L2:  m.MissRateL(2) * 100,
			L3:  m.MissRateL(3) * 100,
		})
	}
	return rows
}

// Figure10Row is one application's normalized miss rates (original = 1).
type Figure10Row struct {
	App                       string
	IntraL1, IntraL2, IntraL3 float64
	InterL1, InterL2, InterL3 float64
}

// Figure10 reports normalized L1/L2/L3 miss rates for the intra- and
// inter-processor schemes.
func (b *Baseline) Figure10() []Figure10Row {
	var rows []Figure10Row
	for _, app := range b.Apps {
		orig := b.ByApp[app][pipeline.Original]
		intra := b.ByApp[app][pipeline.IntraProcessor]
		inter := b.ByApp[app][pipeline.InterProcessor]
		rows = append(rows, Figure10Row{
			App:     app,
			IntraL1: ratio(intra.MissRateL(1), orig.MissRateL(1)),
			IntraL2: ratio(intra.MissRateL(2), orig.MissRateL(2)),
			IntraL3: ratio(intra.MissRateL(3), orig.MissRateL(3)),
			InterL1: ratio(inter.MissRateL(1), orig.MissRateL(1)),
			InterL2: ratio(inter.MissRateL(2), orig.MissRateL(2)),
			InterL3: ratio(inter.MissRateL(3), orig.MissRateL(3)),
		})
	}
	return rows
}

// Figure11Row is one application's normalized I/O latency and execution
// time (original = 1).
type Figure11Row struct {
	App                  string
	IntraIO, InterIO     float64
	IntraExec, InterExec float64
}

// Figure11 reports normalized I/O latency and total execution time.
func (b *Baseline) Figure11() []Figure11Row {
	var rows []Figure11Row
	for _, app := range b.Apps {
		orig := b.ByApp[app][pipeline.Original]
		intra := b.ByApp[app][pipeline.IntraProcessor]
		inter := b.ByApp[app][pipeline.InterProcessor]
		rows = append(rows, Figure11Row{
			App:       app,
			IntraIO:   ratio(intra.IOLatencyMS(), orig.IOLatencyMS()),
			InterIO:   ratio(inter.IOLatencyMS(), orig.IOLatencyMS()),
			IntraExec: ratio(intra.ExecTimeMS(), orig.ExecTimeMS()),
			InterExec: ratio(inter.ExecTimeMS(), orig.ExecTimeMS()),
		})
	}
	return rows
}

// Figure18Row reports the scheduling enhancement (inter-sched) normalized
// against the original version.
type Figure18Row struct {
	App              string
	L1Miss, IO, Exec float64 // inter-sched, normalized
	InterL1          float64 // plain inter for reference
}

// Figure18 reports the Figure 15 scheduler's effect.
func (b *Baseline) Figure18() []Figure18Row {
	var rows []Figure18Row
	for _, app := range b.Apps {
		orig := b.ByApp[app][pipeline.Original]
		inter := b.ByApp[app][pipeline.InterProcessor]
		sched := b.ByApp[app][pipeline.InterProcessorSched]
		rows = append(rows, Figure18Row{
			App:     app,
			L1Miss:  ratio(sched.MissRateL(1), orig.MissRateL(1)),
			IO:      ratio(sched.IOLatencyMS(), orig.IOLatencyMS()),
			Exec:    ratio(sched.ExecTimeMS(), orig.ExecTimeMS()),
			InterL1: ratio(inter.MissRateL(1), orig.MissRateL(1)),
		})
	}
	return rows
}

// Topology is a (clients, I/O nodes, storage nodes) triple.
type Topology struct{ W, X, Y int }

func (t Topology) String() string { return fmt.Sprintf("(%d,%d,%d)", t.W, t.X, t.Y) }

// Figure12Topologies are the sensitivity points of Figure 12.
func Figure12Topologies() []Topology {
	return []Topology{
		{64, 32, 16}, // default
		{64, 16, 16},
		{64, 16, 8},
		{128, 32, 16},
	}
}

// SweepRow is one (configuration, application) cell of a sensitivity
// figure: the inter-processor scheme normalized against the original
// version under the same configuration.
type SweepRow struct {
	Label    string
	App      string
	IO, Exec float64
}

// Figure12 sweeps node-count topologies.
func Figure12(base Config, topos []Topology) ([]SweepRow, error) {
	var rows []SweepRow
	for _, topo := range topos {
		cfg := base
		cfg.Clients, cfg.IONodes, cfg.StorageNodes = topo.W, topo.X, topo.Y
		sub, err := sweepPoint(cfg, topo.String())
		if err != nil {
			return nil, err
		}
		rows = append(rows, sub...)
	}
	return rows, nil
}

// Capacities is a (client, I/O, storage) per-node cache capacity triple in
// chunks.
type Capacities struct{ W, X, Y int }

func (c Capacities) String() string { return fmt.Sprintf("(%d,%d,%d)", c.W, c.X, c.Y) }

// Figure13Capacities are the sensitivity points of Figure 13: the paper's
// halved / default / doubled / shared-boosted per-node capacities, scaled
// to the default (4,8,16)-chunk configuration.
func Figure13Capacities() []Capacities {
	return []Capacities{
		{2, 4, 8},   // half the default (paper: 1GB,1GB,1GB)
		{4, 8, 16},  // default (2GB,2GB,2GB)
		{8, 16, 32}, // double (4GB,4GB,4GB)
		{4, 16, 32}, // bigger shared caches only (2GB,4GB,4GB)
	}
}

// Figure13 sweeps cache capacities.
func Figure13(base Config, caps []Capacities) ([]SweepRow, error) {
	var rows []SweepRow
	for _, cp := range caps {
		cfg := base
		cfg.CacheL1, cfg.CacheL2, cfg.CacheL3 = cp.W, cp.X, cp.Y
		sub, err := sweepPoint(cfg, cp.String())
		if err != nil {
			return nil, err
		}
		rows = append(rows, sub...)
	}
	return rows, nil
}

// Figure14Sizes are the data chunk sizes of Figure 14, scaled 1:16 from
// the paper's 16/32/64/128 KB.
func Figure14Sizes() []int64 { return []int64{1024, 2048, 4096, 8192} }

// Figure14 sweeps the data chunk size. Cache capacities are held constant
// in bytes (the paper varies only the chunk size), so the per-node chunk
// count scales inversely.
func Figure14(base Config, sizes []int64) ([]SweepRow, error) {
	var rows []SweepRow
	baseBytes := int64(base.CacheL1) * base.ChunkBytes
	for _, size := range sizes {
		cfg := base
		cfg.ChunkBytes = size
		scale := func(chunks int) int {
			v := int(int64(chunks) * base.ChunkBytes / size)
			if v < 1 {
				v = 1
			}
			return v
		}
		cfg.CacheL1 = scale(base.CacheL1)
		cfg.CacheL2 = scale(base.CacheL2)
		cfg.CacheL3 = scale(base.CacheL3)
		_ = baseBytes
		label := fmt.Sprintf("%dKB", size*16/1024) // report paper-scale sizes
		sub, err := sweepPoint(cfg, label)
		if err != nil {
			return nil, err
		}
		rows = append(rows, sub...)
	}
	return rows, nil
}

// sweepPoint runs original vs inter for every app under one configuration.
func sweepPoint(cfg Config, label string) ([]SweepRow, error) {
	apps, err := cfg.Apps()
	if err != nil {
		return nil, err
	}
	var rows []SweepRow
	for _, w := range apps {
		orig, err := cfg.Run(w, pipeline.Original)
		if err != nil {
			return nil, err
		}
		inter, err := cfg.Run(w, pipeline.InterProcessor)
		if err != nil {
			return nil, err
		}
		rows = append(rows, SweepRow{
			Label: label,
			App:   w.Name,
			IO:    ratio(inter.IOLatencyMS(), orig.IOLatencyMS()),
			Exec:  ratio(inter.ExecTimeMS(), orig.ExecTimeMS()),
		})
	}
	return rows, nil
}

// AlphaBetaRow is one (α, β) point of the Section 5.4 weight study.
type AlphaBetaRow struct {
	Alpha, Beta float64
	MeanIO      float64 // normalized vs original, averaged over apps
	MeanL1      float64
}

// AlphaBetaSweep studies the scheduler weights (the paper finds α=β=0.5
// best: too-large β misses shared-cache locality, too-large α hurts L1).
func AlphaBetaSweep(base Config, weights [][2]float64) ([]AlphaBetaRow, error) {
	apps, err := base.Apps()
	if err != nil {
		return nil, err
	}
	var rows []AlphaBetaRow
	for _, wgt := range weights {
		cfg := base
		cfg.Alpha, cfg.Beta = wgt[0], wgt[1]
		var ioSum, l1Sum float64
		for _, w := range apps {
			orig, err := cfg.Run(w, pipeline.Original)
			if err != nil {
				return nil, err
			}
			sched, err := cfg.Run(w, pipeline.InterProcessorSched)
			if err != nil {
				return nil, err
			}
			ioSum += ratio(sched.IOLatencyMS(), orig.IOLatencyMS())
			l1Sum += ratio(sched.MissRateL(1), orig.MissRateL(1))
		}
		rows = append(rows, AlphaBetaRow{
			Alpha:  wgt[0],
			Beta:   wgt[1],
			MeanIO: ioSum / float64(len(apps)),
			MeanL1: l1Sum / float64(len(apps)),
		})
	}
	return rows, nil
}

// DependenceRow compares the two Section 5.4 dependence strategies on a
// synthetic dependent nest.
type DependenceRow struct {
	Mode      string
	IO, Exec  float64 // normalized vs original
	SyncEdges int
}

// DependenceStudy builds a loop nest with a genuine cross-iteration,
// cross-chunk dependence and evaluates DepMerge vs DepSync.
func DependenceStudy(cfg Config) ([]DependenceRow, error) {
	n := int64(4096 / cfg.Scale)
	lag := int64(64)
	data := chunking.NewDataSpace(cfg.ChunkBytes,
		chunking.Array{Name: "A", Dims: []int64{n}, ElemSize: 512},
		chunking.Array{Name: "B", Dims: []int64{n}, ElemSize: 512},
	)
	prog := iosim.Program{
		Nest: polyhedral.NewNest("wavefront", []int64{lag, 0}, []int64{n - 1, 3}),
		Refs: []polyhedral.Ref{
			polyhedral.SimpleRef(0, 2, []int{0}, []int64{0}, polyhedral.Write),
			polyhedral.SimpleRef(0, 2, []int{0}, []int64{-lag}, polyhedral.Read),
			polyhedral.SimpleRef(1, 2, []int{0}, []int64{0}, polyhedral.Read),
		},
		Data: data,
	}
	tree := cfg.Tree()
	mcfg := cfg.mappingConfig(tree)
	origRes, err := pipeline.Map(context.Background(), pipeline.Original, prog, mcfg)
	if err != nil {
		return nil, err
	}
	orig, err := iosim.Run(tree, prog, origRes.Assignment, cfg.Params)
	if err != nil {
		return nil, err
	}
	var rows []DependenceRow
	for _, mode := range []struct {
		name string
		mode pipeline.DepMode
	}{{"merge", pipeline.DepMerge}, {"sync", pipeline.DepSync}} {
		mc := mcfg
		mc.DepMode = mode.mode
		res, err := pipeline.Map(context.Background(), pipeline.InterProcessor, prog, mc)
		if err != nil {
			return nil, err
		}
		m, err := iosim.Run(cfg.Tree(), prog, res.Assignment, cfg.Params)
		if err != nil {
			return nil, err
		}
		rows = append(rows, DependenceRow{
			Mode:      mode.name,
			IO:        ratio(m.IOLatencyMS(), orig.IOLatencyMS()),
			Exec:      ratio(m.ExecTimeMS(), orig.ExecTimeMS()),
			SyncEdges: res.SyncEdges,
		})
	}
	return rows, nil
}

// MultiNestRow compares per-nest mapping against combined multi-nest
// mapping (Section 5.4: most reuse is intra-nest; combining nests buys
// only a few percent more cache hits).
type MultiNestRow struct {
	Mode    string
	HitRate float64 // aggregate cache hit rate over all levels
	IO      float64 // normalized vs separate mapping
}

// MultiNestStudy runs two nests sharing a data space, mapped separately
// and together.
func MultiNestStudy(cfg Config) ([]MultiNestRow, error) {
	n := int64(2048 / cfg.Scale)
	data := chunking.NewDataSpace(cfg.ChunkBytes,
		chunking.Array{Name: "A", Dims: []int64{n}, ElemSize: 512},
		chunking.Array{Name: "B", Dims: []int64{n}, ElemSize: 512},
	)
	mk := func(name string, array int, passes int64) iosim.Program {
		return iosim.Program{
			Nest: polyhedral.NewNest(name, []int64{0, 0}, []int64{passes - 1, n - 1}),
			Refs: []polyhedral.Ref{
				polyhedral.SimpleRef(array, 2, []int{1}, []int64{0}, polyhedral.Read),
				polyhedral.SimpleRef(1-array, 2, []int{1}, []int64{0}, polyhedral.Write),
			},
			Data: data,
		}
	}
	progs := []iosim.Program{mk("nest0", 0, 3), mk("nest1", 1, 3)}
	tree := cfg.Tree()
	mcfg := cfg.mappingConfig(tree)

	hitRate := func(m *iosim.Metrics) float64 {
		var acc, hit int64
		for _, st := range m.LevelStats {
			acc += st.Accesses
			hit += st.Hits
		}
		if acc == 0 {
			return 0
		}
		return float64(hit) / float64(acc)
	}

	// Separate: each nest mapped in isolation.
	var sepAsgs []iosim.Assignment
	for _, p := range progs {
		res, err := pipeline.Map(context.Background(), pipeline.InterProcessor, p, mcfg)
		if err != nil {
			return nil, err
		}
		sepAsgs = append(sepAsgs, res.Assignment)
	}
	mSep, err := iosim.RunSequence(cfg.Tree(), progs, sepAsgs, cfg.Params)
	if err != nil {
		return nil, err
	}
	// Combined multi-nest mapping.
	comAsgs, err := pipeline.MapMulti(context.Background(), pipeline.InterProcessor, progs, mcfg)
	if err != nil {
		return nil, err
	}
	mCom, err := iosim.RunSequence(cfg.Tree(), progs, comAsgs, cfg.Params)
	if err != nil {
		return nil, err
	}
	return []MultiNestRow{
		{Mode: "separate", HitRate: hitRate(mSep), IO: 1},
		{Mode: "combined", HitRate: hitRate(mCom),
			IO: ratio(mCom.IOLatencyMS(), mSep.IOLatencyMS())},
	}, nil
}

// PolicyRow is one cache-policy ablation point (beyond the paper, which
// notes the approach works with any policy).
type PolicyRow struct {
	Policy string
	MeanIO float64 // inter normalized vs original under the same policy
}

// PolicyAblation re-runs the headline comparison under different cache
// replacement policies.
func PolicyAblation(base Config, policies []cache.PolicyKind) ([]PolicyRow, error) {
	apps, err := base.Apps()
	if err != nil {
		return nil, err
	}
	var rows []PolicyRow
	for _, p := range policies {
		cfg := base
		cfg.Params.Policy = p
		var ioSum float64
		for _, w := range apps {
			orig, err := cfg.Run(w, pipeline.Original)
			if err != nil {
				return nil, err
			}
			inter, err := cfg.Run(w, pipeline.InterProcessor)
			if err != nil {
				return nil, err
			}
			ioSum += ratio(inter.IOLatencyMS(), orig.IOLatencyMS())
		}
		rows = append(rows, PolicyRow{Policy: p.String(), MeanIO: ioSum / float64(len(apps))})
	}
	return rows, nil
}

// ThresholdRow is one balance-threshold ablation point.
type ThresholdRow struct {
	Threshold float64
	MeanIO    float64
	MaxImbal  float64 // worst per-client iteration imbalance fraction
}

// ThresholdSweep studies the load-balance threshold of the distribution
// algorithm.
func ThresholdSweep(base Config, thresholds []float64) ([]ThresholdRow, error) {
	apps, err := base.Apps()
	if err != nil {
		return nil, err
	}
	var rows []ThresholdRow
	for _, th := range thresholds {
		cfg := base
		cfg.BalanceThreshold = th
		var ioSum, worst float64
		for _, w := range apps {
			orig, err := cfg.Run(w, pipeline.Original)
			if err != nil {
				return nil, err
			}
			tree := cfg.Tree()
			res, err := pipeline.Map(context.Background(), pipeline.InterProcessor, w.Prog, cfg.mappingConfig(tree))
			if err != nil {
				return nil, err
			}
			m, err := iosim.Run(tree, w.Prog, res.Assignment, cfg.Params)
			if err != nil {
				return nil, err
			}
			ioSum += ratio(m.IOLatencyMS(), orig.IOLatencyMS())
			total := res.Assignment.TotalIterations()
			ideal := float64(total) / float64(cfg.Clients)
			for _, blocks := range res.Assignment {
				var n int64
				for _, b := range blocks {
					n += b.Count()
				}
				dev := (float64(n) - ideal) / ideal
				if dev < 0 {
					dev = -dev
				}
				if dev > worst {
					worst = dev
				}
			}
		}
		rows = append(rows, ThresholdRow{Threshold: th, MeanIO: ioSum / float64(len(apps)), MaxImbal: worst})
	}
	return rows, nil
}
