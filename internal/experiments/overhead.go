package experiments

import (
	"context"
	"time"

	"repro/internal/pipeline"
	"repro/internal/tags"
)

// OverheadRow measures the compile-time cost of the mapping for one
// application: the paper reports that including the approach increased
// compilation times by 46–87%, and that shrinking the data chunk from
// 64 KB to 16 KB increased compilation time by more than 75% (Section 5.3).
type OverheadRow struct {
	App        string
	Chunks     int           // iteration chunks fed to the distributor
	TagMS      float64       // iteration chunk formation
	ClusterMS  float64       // Figure 5 distribution (similarity+cluster+balance)
	ScheduleMS float64       // Figure 15 scheduling
	Total      time.Duration // end-to-end mapping time
}

// OverheadStudy times each mapping phase per application by reading the
// staged planner's own per-stage ledger (the same breakdown the daemon
// exports as cachemapd_stage_duration_seconds). chunkBytes overrides the
// data chunk size (0 = the config's default), so the paper's
// chunk-size/compile-time trade-off can be reproduced by calling it twice.
func OverheadStudy(base Config, chunkBytes int64) ([]OverheadRow, error) {
	if chunkBytes == 0 {
		chunkBytes = base.ChunkBytes
	}
	apps, err := base.Apps()
	if err != nil {
		return nil, err
	}
	tree := base.Tree()
	var rows []OverheadRow
	for _, w := range apps {
		if chunkBytes != w.Prog.Data.ChunkBytes {
			w = w.WithChunkBytes(chunkBytes)
		}
		t0 := time.Now()
		res, err := pipeline.Map(context.Background(), pipeline.InterProcessorSched,
			w.Prog, base.mappingConfig(tree))
		if err != nil {
			return nil, err
		}
		total := time.Since(t0)
		row := OverheadRow{App: w.Name, Chunks: len(res.Chunks), Total: total}
		for _, st := range res.Stages {
			switch st.Stage {
			case pipeline.StageTags:
				row.TagMS += st.DurationMS
			case pipeline.StageSimilarity, pipeline.StageCluster, pipeline.StageBalance:
				row.ClusterMS += st.DurationMS
			case pipeline.StageSchedule:
				row.ScheduleMS += st.DurationMS
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// MappingWorkFactor compares the iteration-chunk counts (the dominant
// clustering cost driver) at two chunk sizes — the structural part of the
// paper's compile-time observation, independent of wall-clock noise. Only
// the tag stage runs, so the comparison stays cheap at small chunk sizes.
func MappingWorkFactor(base Config, sizeA, sizeB int64) (chunksA, chunksB int, err error) {
	apps, err := base.Apps()
	if err != nil {
		return 0, 0, err
	}
	for _, w := range apps {
		a := w.WithChunkBytes(sizeA)
		b := w.WithChunkBytes(sizeB)
		chunksA += len(tags.Compute(a.Prog.Nest, a.Prog.Refs, a.Prog.Data))
		chunksB += len(tags.Compute(b.Prog.Nest, b.Prog.Refs, b.Prog.Data))
	}
	return chunksA, chunksB, nil
}
