package experiments

import (
	"time"

	"repro/internal/core"
	"repro/internal/mapping"
	"repro/internal/tags"
)

// OverheadRow measures the compile-time cost of the mapping for one
// application: the paper reports that including the approach increased
// compilation times by 46–87%, and that shrinking the data chunk from
// 64 KB to 16 KB increased compilation time by more than 75% (Section 5.3).
type OverheadRow struct {
	App        string
	Chunks     int           // iteration chunks fed to the distributor
	TagMS      float64       // iteration chunk formation
	ClusterMS  float64       // Figure 5 distribution
	ScheduleMS float64       // Figure 15 scheduling
	Total      time.Duration // end-to-end mapping time
}

// OverheadStudy times each mapping phase per application. chunkBytes
// overrides the data chunk size (0 = the config's default), so the paper's
// chunk-size/compile-time trade-off can be reproduced by calling it twice.
func OverheadStudy(base Config, chunkBytes int64) ([]OverheadRow, error) {
	if chunkBytes == 0 {
		chunkBytes = base.ChunkBytes
	}
	apps, err := base.Apps()
	if err != nil {
		return nil, err
	}
	tree := base.Tree()
	var rows []OverheadRow
	for _, w := range apps {
		if chunkBytes != w.Prog.Data.ChunkBytes {
			w = w.WithChunkBytes(chunkBytes)
		}
		t0 := time.Now()
		chunks := tags.Compute(w.Prog.Nest, w.Prog.Refs, w.Prog.Data)
		t1 := time.Now()
		opts := core.Options{BalanceThreshold: base.BalanceThreshold}
		perClient, err := core.Distribute(chunks, tree, opts)
		if err != nil {
			return nil, err
		}
		t2 := time.Now()
		if _, err := core.Schedule(perClient, tree,
			core.ScheduleOptions{Alpha: base.Alpha, Beta: base.Beta}); err != nil {
			return nil, err
		}
		t3 := time.Now()
		rows = append(rows, OverheadRow{
			App:        w.Name,
			Chunks:     len(chunks),
			TagMS:      float64(t1.Sub(t0).Microseconds()) / 1000,
			ClusterMS:  float64(t2.Sub(t1).Microseconds()) / 1000,
			ScheduleMS: float64(t3.Sub(t2).Microseconds()) / 1000,
			Total:      t3.Sub(t0),
		})
	}
	return rows, nil
}

// MappingWorkFactor compares the iteration-chunk counts (the dominant
// clustering cost driver) at two chunk sizes — the structural part of the
// paper's compile-time observation, independent of wall-clock noise.
func MappingWorkFactor(base Config, sizeA, sizeB int64) (chunksA, chunksB int, err error) {
	apps, err := base.Apps()
	if err != nil {
		return 0, 0, err
	}
	for _, w := range apps {
		a := w.WithChunkBytes(sizeA)
		b := w.WithChunkBytes(sizeB)
		chunksA += len(tags.Compute(a.Prog.Nest, a.Prog.Refs, a.Prog.Data))
		chunksB += len(tags.Compute(b.Prog.Nest, b.Prog.Refs, b.Prog.Data))
	}
	return chunksA, chunksB, nil
}

// interMappingOnly is a tiny helper used in tests to ensure the study uses
// the same pipeline as the real mapping package.
var _ = mapping.InterProcessor
