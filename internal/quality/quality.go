// Package quality measures the quality of the plans cachemapd serves,
// not just the latency of producing them. A deterministic fraction of
// served responses is shadow-simulated: the response's plan is re-run
// through iosim off the request path (its own worker goroutine and a
// bounded queue, so sampling can never add request latency or starve
// admission) under a hard iteration cap that bounds the cost of each
// shadow pass. Results — per-level miss rates, load imbalance, estimated
// execution time — land in a per-workload-family ring ledger keyed by
// serve mode, so the locality cost of every degradation and repair path
// becomes a first-class measured quantity. The ledger is the observed
// input the ROADMAP's online re-mapping loop will consume.
package quality

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/hierarchy"
	"repro/internal/iosim"
	"repro/internal/mapping"
)

// Serve-mode labels. Every served response is exactly one of these; the
// ledger and the missrate gauges are keyed by them.
const (
	ModeFull             = "full"              // complete pipeline run
	ModeCached           = "cached"            // content-addressed cache hit
	ModeIncremental      = "incremental"       // repair fast-path (stale plan resumed)
	ModeDegradedStale    = "degraded_stale"    // shed: served a stale plan as-is
	ModeDegradedFallback = "degraded_fallback" // shed: served the trivial fallback plan
)

// Modes lists the serve-mode labels in stable display order.
func Modes() []string {
	return []string{ModeFull, ModeCached, ModeIncremental, ModeDegradedStale, ModeDegradedFallback}
}

// Sample is one shadow-simulation candidate: everything needed to re-run
// a served plan through iosim. The plan is carried in wire form and only
// decoded on the worker goroutine, so offering a sample costs the request
// path a counter increment and a channel send.
type Sample struct {
	TraceID string
	Family  string
	Mode    string
	Tree    *hierarchy.Tree
	Prog    iosim.Program
	Plan    *mapping.Plan
	// Params is the base simulation parameter set; the sampler strips
	// tracing and applies its iteration cap before running.
	Params iosim.Params
}

// Record is the outcome of one shadow simulation.
type Record struct {
	TraceID string `json:"trace_id"`
	Family  string `json:"family"`
	Mode    string `json:"mode"`
	// MissRates[k-1] is the aggregate miss rate of paper cache level Lk.
	MissRates  []float64 `json:"miss_rates"`
	Imbalance  float64   `json:"imbalance"`
	ExecMS     float64   `json:"exec_ms"`
	Iterations int64     `json:"iterations"`
	// Truncated marks a shadow run stopped by the iteration cap; its
	// metrics cover the executed prefix only.
	Truncated bool `json:"truncated,omitempty"`
	// SimMS is the wall-clock cost of the shadow pass itself.
	SimMS float64 `json:"sim_ms"`
	Err   string  `json:"err,omitempty"`
}

// Counts are the sampler's decision counters: Sampled responses were
// enqueued for shadow simulation, Skipped failed the deterministic draw,
// Overflow passed the draw but found the queue full (shadow work is shed,
// never queued unboundedly).
type Counts struct {
	Sampled  uint64 `json:"sampled"`
	Skipped  uint64 `json:"skipped"`
	Overflow uint64 `json:"overflow"`
}

// Config configures a Sampler. Zero values select the documented defaults.
type Config struct {
	// Rate is the sampled fraction of served responses in [0, 1]. At
	// rate <= 0 the sampler is inert: no worker goroutine is started and
	// Offer never enqueues.
	Rate float64
	// Seed seeds the deterministic per-arrival draw; the same seed and
	// arrival order always select the same responses.
	Seed uint64
	// QueueCap bounds the shadow-work queue (default 64). A full queue
	// sheds the sample and increments Counts.Overflow.
	QueueCap int
	// RingSize bounds each (family, mode) ledger ring (default 64).
	RingSize int
	// MaxIterations caps each shadow simulation (default 65536).
	MaxIterations int64
	// OnRecord, when non-nil, is invoked on the worker goroutine with
	// every completed record, after the ledger is updated. The server
	// uses it to set missrate gauges and backfill request events.
	OnRecord func(Record)
}

const (
	defaultQueueCap = 64
	defaultRingSize = 64
	defaultMaxIters = 65536
)

// Sampler draws a deterministic fraction of served responses and shadow-
// simulates them on a single dedicated worker goroutine. All methods are
// safe for concurrent use.
type Sampler struct {
	rate     float64
	seed     uint64
	maxIters int64
	onRecord func(Record)
	ledger   *Ledger

	arrivals atomic.Uint64
	sampled  atomic.Uint64
	skipped  atomic.Uint64
	overflow atomic.Uint64

	queue  chan Sample
	stop   chan struct{}
	done   chan struct{}
	closed atomic.Bool
}

// NewSampler builds a sampler. At cfg.Rate <= 0 it returns an inert
// sampler that owns no goroutine and never enqueues — the zero-cost
// configuration for latency-sensitive deployments.
func NewSampler(cfg Config) *Sampler {
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = defaultQueueCap
	}
	if cfg.RingSize <= 0 {
		cfg.RingSize = defaultRingSize
	}
	if cfg.MaxIterations <= 0 {
		cfg.MaxIterations = defaultMaxIters
	}
	s := &Sampler{
		rate:     cfg.Rate,
		seed:     cfg.Seed,
		maxIters: cfg.MaxIterations,
		onRecord: cfg.OnRecord,
		ledger:   NewLedger(cfg.RingSize),
	}
	if cfg.Rate > 0 {
		s.queue = make(chan Sample, cfg.QueueCap)
		s.stop = make(chan struct{})
		s.done = make(chan struct{})
		go s.loop()
	}
	return s
}

// Active reports whether the sampler owns a worker (rate > 0, not closed).
func (s *Sampler) Active() bool { return s.queue != nil && !s.closed.Load() }

// Ledger returns the sampler's quality ledger.
func (s *Sampler) Ledger() *Ledger { return s.ledger }

// Counts snapshots the decision counters.
func (s *Sampler) Counts() Counts {
	return Counts{
		Sampled:  s.sampled.Load(),
		Skipped:  s.skipped.Load(),
		Overflow: s.overflow.Load(),
	}
}

// Offer applies the deterministic sampling decision to one served
// response and, when drawn, hands it to the shadow worker. It never
// blocks: a full queue sheds the sample. Returns whether the sample was
// enqueued.
func (s *Sampler) Offer(smp Sample) bool {
	if s.queue == nil {
		return false
	}
	n := s.arrivals.Add(1)
	if !Drawn(s.seed, n, s.rate) {
		s.skipped.Add(1)
		return false
	}
	if s.closed.Load() {
		s.overflow.Add(1)
		return false
	}
	select {
	case s.queue <- smp:
		s.sampled.Add(1)
		return true
	default:
		s.overflow.Add(1)
		return false
	}
}

// Close stops the worker and waits for it to exit. Safe to call more
// than once and on inert samplers.
func (s *Sampler) Close() {
	if s.queue == nil || !s.closed.CompareAndSwap(false, true) {
		return
	}
	close(s.stop)
	<-s.done
}

// Drawn is the deterministic per-arrival sampling decision: arrival n is
// sampled iff the splitmix64 mix of (seed, n), mapped to a uniform in
// [0, 1), falls below rate. The same (seed, rate, arrival order) always
// selects the same set — tests and replayed traffic sample identically.
func Drawn(seed, n uint64, rate float64) bool {
	if rate >= 1 {
		return true
	}
	u := float64(splitmix64(seed+n)>>11) / float64(1<<53)
	return u < rate
}

func (s *Sampler) loop() {
	defer close(s.done)
	for {
		select {
		case <-s.stop:
			return
		case smp := <-s.queue:
			rec := s.runOne(smp)
			s.ledger.Add(rec)
			if s.onRecord != nil {
				s.onRecord(rec)
			}
		}
	}
}

// runOne executes one bounded shadow simulation. Plan decoding happens
// here, on the worker, never on a request goroutine.
func (s *Sampler) runOne(smp Sample) Record {
	start := time.Now()
	rec := Record{TraceID: smp.TraceID, Family: smp.Family, Mode: smp.Mode}
	if smp.Plan == nil || smp.Tree == nil {
		rec.Err = "quality: sample lacks plan or tree"
		return rec
	}
	asg, err := smp.Plan.Assignment()
	if err != nil {
		rec.Err = fmt.Sprintf("decode plan: %v", err)
		return rec
	}
	p := smp.Params
	p.TraceSink = nil
	p.MaxIterations = s.maxIters
	m, err := iosim.RunCtx(context.Background(), smp.Tree, smp.Prog, asg, p)
	rec.SimMS = float64(time.Since(start)) / float64(time.Millisecond)
	if err != nil {
		rec.Err = err.Error()
		return rec
	}
	// Paper levels run L1 (client caches, tree level Height) through
	// L(Height+1) (the root).
	rec.MissRates = make([]float64, m.Height+1)
	for k := 1; k <= m.Height+1; k++ {
		rec.MissRates[k-1] = m.MissRateL(k)
	}
	rec.Imbalance = m.Imbalance()
	rec.ExecMS = m.ExecTimeMS()
	rec.Iterations = m.Iterations
	rec.Truncated = m.Truncated
	return rec
}

// splitmix64 is the finalizing mix of the SplitMix64 generator — the same
// cheap uint64 bijection package faults uses for its deterministic draws.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Ledger is the per-workload-family quality ledger: for each (family,
// serve mode) pair it keeps a bounded ring of the most recent shadow
// records plus lifetime totals.
type Ledger struct {
	mu    sync.Mutex
	ring  int
	cells map[string]map[string]*cell // family → mode → ring
}

type cell struct {
	recs  []Record // ring storage, filled up to ring size
	next  int      // next overwrite position once full
	total int64    // lifetime records
	errs  int64    // lifetime errored records
}

// NewLedger builds a ledger with the given per-cell ring size.
func NewLedger(ring int) *Ledger {
	if ring <= 0 {
		ring = defaultRingSize
	}
	return &Ledger{ring: ring, cells: make(map[string]map[string]*cell)}
}

// Add appends one record to its (family, mode) ring.
func (l *Ledger) Add(rec Record) {
	l.mu.Lock()
	defer l.mu.Unlock()
	modes := l.cells[rec.Family]
	if modes == nil {
		modes = make(map[string]*cell)
		l.cells[rec.Family] = modes
	}
	c := modes[rec.Mode]
	if c == nil {
		c = &cell{}
		modes[rec.Mode] = c
	}
	c.total++
	if rec.Err != "" {
		c.errs++
	}
	if len(c.recs) < l.ring {
		c.recs = append(c.recs, rec)
		return
	}
	c.recs[c.next] = rec
	c.next = (c.next + 1) % l.ring
}

// ModeStats summarizes one (family, mode) ring: windowed means over the
// ring's non-errored records plus lifetime totals.
type ModeStats struct {
	// Samples is the lifetime record count; Window is how many records
	// the ring currently holds (means below cover the window only).
	Samples int64 `json:"samples"`
	Window  int   `json:"window"`
	// MissRates[k-1] is the windowed mean miss rate of paper level Lk.
	MissRates []float64 `json:"miss_rates"`
	Imbalance float64   `json:"imbalance"`
	ExecMS    float64   `json:"exec_ms"`
	Truncated int64     `json:"truncated,omitempty"`
	Errors    int64     `json:"errors,omitempty"`
	// LastTraceID links the most recent sampled request for this cell.
	LastTraceID string `json:"last_trace_id,omitempty"`
}

// Snapshot is the JSON form of a ledger: family → serve mode → stats.
type Snapshot map[string]map[string]ModeStats

// Snapshot summarizes every (family, mode) ring.
func (l *Ledger) Snapshot() Snapshot {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make(Snapshot, len(l.cells))
	for fam, modes := range l.cells {
		out[fam] = make(map[string]ModeStats, len(modes))
		for mode, c := range modes {
			out[fam][mode] = c.stats()
		}
	}
	return out
}

func (c *cell) stats() ModeStats {
	st := ModeStats{Samples: c.total, Window: len(c.recs), Errors: c.errs}
	var good int
	var last Record
	var lastSeen bool
	for i, rec := range c.recs {
		// The newest record is the one just before the overwrite cursor
		// (or the last appended while the ring is still filling).
		if i == (c.next-1+len(c.recs))%len(c.recs) {
			last, lastSeen = rec, true
		}
		if rec.Err != "" {
			continue
		}
		good++
		if rec.Truncated {
			st.Truncated++
		}
		for len(st.MissRates) < len(rec.MissRates) {
			st.MissRates = append(st.MissRates, 0)
		}
		for k, v := range rec.MissRates {
			st.MissRates[k] += v
		}
		st.Imbalance += rec.Imbalance
		st.ExecMS += rec.ExecMS
	}
	if good > 0 {
		for k := range st.MissRates {
			st.MissRates[k] /= float64(good)
		}
		st.Imbalance /= float64(good)
		st.ExecMS /= float64(good)
	}
	if lastSeen {
		st.LastTraceID = last.TraceID
	}
	return st
}
