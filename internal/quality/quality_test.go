package quality

import (
	"bytes"
	"fmt"
	"runtime"
	"testing"
	"time"

	"repro/internal/chunking"
	"repro/internal/hierarchy"
	"repro/internal/iosim"
	"repro/internal/mapping"
	"repro/internal/polyhedral"
)

// testSample builds a runnable shadow sample: a 4-client layered tree, a
// 1-D scan of n iterations, and a block-contiguous plan over it.
func testSample(n int64, mode string) Sample {
	tree := hierarchy.NewLayered(
		hierarchy.LayerSpec{Count: 1, CacheChunks: 16, Label: "SN"},
		hierarchy.LayerSpec{Count: 2, CacheChunks: 8, Label: "IO"},
		hierarchy.LayerSpec{Count: 4, CacheChunks: 4, Label: "CN"},
	)
	nest := polyhedral.NewNest("scan", []int64{0}, []int64{n - 1})
	data := chunking.NewDataSpace(32, chunking.Array{Name: "A", Dims: []int64{n}, ElemSize: 8})
	prog := iosim.Program{
		Nest: nest,
		Refs: []polyhedral.Ref{polyhedral.SimpleRef(0, 1, []int{0}, []int64{0}, polyhedral.Read)},
		Data: data,
	}
	plan := &mapping.Plan{Schema: mapping.PlanSchemaVersion, Clients: 4, TotalIterations: n}
	per := n / 4
	for c := int64(0); c < 4; c++ {
		hi := (c + 1) * per
		if c == 3 {
			hi = n
		}
		plan.Work = append(plan.Work, []mapping.PlanBlock{{Runs: [][2]int64{{c * per, hi}}}})
	}
	return Sample{
		TraceID: fmt.Sprintf("t-%s", mode),
		Family:  "scan",
		Mode:    mode,
		Tree:    tree,
		Prog:    prog,
		Plan:    plan,
		Params:  iosim.DefaultParams(),
	}
}

func TestDrawDeterminism(t *testing.T) {
	set := func(seed uint64, rate float64, n int) []int {
		var out []int
		for i := 1; i <= n; i++ {
			if Drawn(seed, uint64(i), rate) {
				out = append(out, i)
			}
		}
		return out
	}
	a := set(42, 0.3, 2000)
	b := set(42, 0.3, 2000)
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatal("same seed selected different sets")
	}
	if len(a) == 0 || len(a) == 2000 {
		t.Fatalf("rate 0.3 sampled %d/2000", len(a))
	}
	// ~30% of 2000 with generous slack.
	if len(a) < 400 || len(a) > 800 {
		t.Fatalf("rate 0.3 sampled %d/2000, far from expectation", len(a))
	}
	c := set(43, 0.3, 2000)
	if fmt.Sprint(a) == fmt.Sprint(c) {
		t.Fatal("different seeds selected identical sets")
	}
	if got := len(set(7, 1.0, 100)); got != 100 {
		t.Fatalf("rate 1.0 sampled %d/100", got)
	}
}

// goid extracts the current goroutine's id from its stack header — test
// plumbing to prove where the shadow simulation actually ran.
func goid() string {
	buf := make([]byte, 64)
	buf = buf[:runtime.Stack(buf, false)]
	fields := bytes.Fields(buf)
	if len(fields) < 2 {
		return "?"
	}
	return string(fields[1])
}

func TestShadowSimRunsOffCallerGoroutine(t *testing.T) {
	recs := make(chan struct {
		rec Record
		gid string
	}, 1)
	s := NewSampler(Config{Rate: 1, Seed: 1, OnRecord: func(r Record) {
		recs <- struct {
			rec Record
			gid string
		}{r, goid()}
	}})
	defer s.Close()
	if !s.Offer(testSample(100, ModeFull)) {
		t.Fatal("rate-1 offer not enqueued")
	}
	select {
	case got := <-recs:
		if got.gid == goid() {
			t.Fatal("shadow simulation ran on the offering goroutine")
		}
		if got.rec.Err != "" {
			t.Fatalf("shadow sim failed: %s", got.rec.Err)
		}
		if got.rec.Iterations != 100 || len(got.rec.MissRates) != 3 {
			t.Fatalf("unexpected record: %+v", got.rec)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("shadow record never arrived")
	}
	snap := s.Ledger().Snapshot()
	st, ok := snap["scan"][ModeFull]
	if !ok || st.Samples != 1 || st.Window != 1 {
		t.Fatalf("ledger snapshot missing record: %+v", snap)
	}
	if st.MissRates[0] <= 0 || st.MissRates[0] > 1 {
		t.Fatalf("L1 miss rate %v out of range", st.MissRates[0])
	}
	if c := s.Counts(); c.Sampled != 1 || c.Overflow != 0 {
		t.Fatalf("counts: %+v", c)
	}
}

func TestInertSamplerOwnsNoGoroutine(t *testing.T) {
	before := runtime.NumGoroutine()
	s := NewSampler(Config{Rate: 0})
	if s.Active() {
		t.Fatal("rate-0 sampler reports active")
	}
	if s.Offer(testSample(64, ModeFull)) {
		t.Fatal("rate-0 sampler enqueued")
	}
	s.Close()
	// Allow the runtime a moment to settle, then require no growth.
	deadline := time.Now().Add(time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Fatalf("goroutines grew %d -> %d with sampling off", before, after)
	}
	if c := s.Counts(); c.Sampled != 0 {
		t.Fatalf("inert sampler recorded samples: %+v", c)
	}
}

func TestOfferShedsWhenQueueFull(t *testing.T) {
	busy := make(chan struct{}, 2)
	release := make(chan struct{})
	s := NewSampler(Config{Rate: 1, Seed: 1, QueueCap: 1, OnRecord: func(Record) {
		busy <- struct{}{}
		<-release
	}})
	defer s.Close()
	// First sample occupies the worker (blocked in OnRecord)...
	if !s.Offer(testSample(16, ModeFull)) {
		t.Fatal("first offer rejected")
	}
	<-busy
	// ...second fills the 1-slot queue, third must shed.
	if !s.Offer(testSample(16, ModeCached)) {
		t.Fatal("second offer rejected with empty queue")
	}
	if s.Offer(testSample(16, ModeIncremental)) {
		t.Fatal("third offer accepted past queue capacity")
	}
	close(release)
	if c := s.Counts(); c.Sampled != 2 || c.Overflow != 1 {
		t.Fatalf("counts: %+v", c)
	}
}

func TestSamplerDeterministicAcrossRuns(t *testing.T) {
	run := func(seed uint64) []bool {
		s := NewSampler(Config{Rate: 0.5, Seed: seed})
		defer s.Close()
		out := make([]bool, 200)
		for i := range out {
			// Inert payload: decisions alone are under test.
			out[i] = s.Offer(testSample(16, ModeFull))
		}
		return out
	}
	a, b, c := run(99), run(99), run(100)
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatal("same seed produced different sampled request sets")
	}
	if fmt.Sprint(a) == fmt.Sprint(c) {
		t.Fatal("different seeds produced identical sampled request sets")
	}
}

func TestLedgerRingAndStats(t *testing.T) {
	l := NewLedger(4)
	for i := 0; i < 10; i++ {
		l.Add(Record{
			TraceID:   fmt.Sprintf("t%d", i),
			Family:    "f",
			Mode:      ModeFull,
			MissRates: []float64{float64(i), 1},
			Imbalance: 2,
			ExecMS:    10,
		})
	}
	l.Add(Record{Family: "f", Mode: ModeDegradedStale, Err: "boom"})
	snap := l.Snapshot()
	st := snap["f"][ModeFull]
	if st.Samples != 10 || st.Window != 4 {
		t.Fatalf("samples/window: %+v", st)
	}
	// Ring holds records 6..9: mean L1 miss "rate" (6+7+8+9)/4 = 7.5.
	if st.MissRates[0] != 7.5 || st.MissRates[1] != 1 {
		t.Fatalf("windowed means: %v", st.MissRates)
	}
	if st.Imbalance != 2 || st.ExecMS != 10 {
		t.Fatalf("windowed means: %+v", st)
	}
	if st.LastTraceID != "t9" {
		t.Fatalf("LastTraceID = %q, want t9", st.LastTraceID)
	}
	deg := snap["f"][ModeDegradedStale]
	if deg.Errors != 1 || deg.Samples != 1 {
		t.Fatalf("error accounting: %+v", deg)
	}
}

func TestCloseIsIdempotentAndStopsOffers(t *testing.T) {
	s := NewSampler(Config{Rate: 1, Seed: 1})
	s.Close()
	s.Close()
	if s.Active() {
		t.Fatal("closed sampler reports active")
	}
	if s.Offer(testSample(16, ModeFull)) {
		t.Fatal("closed sampler enqueued")
	}
}
