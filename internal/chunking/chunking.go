// Package chunking models the disk-resident data space of a workload and
// its partition into equal-sized data chunks π0…π(r−1).
//
// Following Figure 4 of the paper, every array is partitioned separately —
// no chunk spans two arrays — and chunk labels increase contiguously from
// the last chunk of array t to the first chunk of array t+1. The chunk is
// both the tag granularity of the mapping algorithm and the unit at which
// storage caches and the striped disk operate.
package chunking

import "fmt"

// Array describes one disk-resident array: its dimensions (row-major
// layout) and element size in bytes.
type Array struct {
	Name     string
	Dims     []int64
	ElemSize int64
}

// NumElems returns the number of elements in the array.
func (a Array) NumElems() int64 {
	n := int64(1)
	for _, d := range a.Dims {
		n *= d
	}
	return n
}

// Bytes returns the array's total size in bytes.
func (a Array) Bytes() int64 { return a.NumElems() * a.ElemSize }

// LinearIndex converts a subscript vector to the row-major element index.
// Subscripts are 0-based; out-of-bounds subscripts are clamped into the
// array (out-of-core codes routinely touch boundary halos, and clamping
// keeps the chunk-access pattern faithful without spurious panics).
func (a Array) LinearIndex(subs []int64) int64 {
	if len(subs) != len(a.Dims) {
		panic(fmt.Sprintf("chunking: %d subscripts for %d-d array %q", len(subs), len(a.Dims), a.Name))
	}
	var idx int64
	for d, s := range subs {
		if s < 0 {
			s = 0
		} else if s >= a.Dims[d] {
			s = a.Dims[d] - 1
		}
		idx = idx*a.Dims[d] + s
	}
	return idx
}

// DataSpace is the combined data space of all disk-resident arrays of a
// workload, partitioned into equal data chunks of ChunkBytes bytes.
type DataSpace struct {
	Arrays     []Array
	ChunkBytes int64

	chunkBase []int // first global chunk id of each array
	numChunks int
}

// NewDataSpace builds the data space and assigns global chunk numbers.
func NewDataSpace(chunkBytes int64, arrays ...Array) *DataSpace {
	if chunkBytes <= 0 {
		panic(fmt.Sprintf("chunking: non-positive chunk size %d", chunkBytes))
	}
	if len(arrays) == 0 {
		panic("chunking: data space with no arrays")
	}
	ds := &DataSpace{Arrays: arrays, ChunkBytes: chunkBytes}
	ds.chunkBase = make([]int, len(arrays)+1)
	for t, a := range arrays {
		if a.ElemSize <= 0 {
			panic(fmt.Sprintf("chunking: array %q has element size %d", a.Name, a.ElemSize))
		}
		if a.NumElems() <= 0 {
			panic(fmt.Sprintf("chunking: array %q is empty", a.Name))
		}
		n := (a.Bytes() + chunkBytes - 1) / chunkBytes
		ds.chunkBase[t+1] = ds.chunkBase[t] + int(n)
	}
	ds.numChunks = ds.chunkBase[len(arrays)]
	return ds
}

// NumChunks returns r, the total number of data chunks across all arrays.
func (ds *DataSpace) NumChunks() int { return ds.numChunks }

// ArrayChunks returns the number of chunks of array t.
func (ds *DataSpace) ArrayChunks(t int) int { return ds.chunkBase[t+1] - ds.chunkBase[t] }

// ChunkBase returns the global id of the first chunk of array t.
func (ds *DataSpace) ChunkBase(t int) int { return ds.chunkBase[t] }

// TotalBytes returns the combined size of all arrays.
func (ds *DataSpace) TotalBytes() int64 {
	var total int64
	for _, a := range ds.Arrays {
		total += a.Bytes()
	}
	return total
}

// ChunkOf maps (array t, subscript vector) to the global data chunk id.
func (ds *DataSpace) ChunkOf(t int, subs []int64) int {
	if t < 0 || t >= len(ds.Arrays) {
		panic(fmt.Sprintf("chunking: array index %d out of range", t))
	}
	a := ds.Arrays[t]
	byteOff := a.LinearIndex(subs) * a.ElemSize
	local := int(byteOff / ds.ChunkBytes)
	return ds.chunkBase[t] + local
}

// ChunkOfElem maps (array t, linear element index) to the global chunk id.
func (ds *DataSpace) ChunkOfElem(t int, elem int64) int {
	a := ds.Arrays[t]
	if elem < 0 {
		elem = 0
	} else if n := a.NumElems(); elem >= n {
		elem = n - 1
	}
	return ds.chunkBase[t] + int(elem*a.ElemSize/ds.ChunkBytes)
}

// ArrayOfChunk returns which array a global chunk id belongs to.
func (ds *DataSpace) ArrayOfChunk(chunk int) int {
	if chunk < 0 || chunk >= ds.numChunks {
		panic(fmt.Sprintf("chunking: chunk %d out of range [0,%d)", chunk, ds.numChunks))
	}
	// Linear scan: the array count is tiny.
	for t := 0; t < len(ds.Arrays); t++ {
		if chunk < ds.chunkBase[t+1] {
			return t
		}
	}
	panic("unreachable")
}

// Rescale returns a new DataSpace over the same arrays with a different
// chunk size (the Figure 14 sensitivity knob).
func (ds *DataSpace) Rescale(chunkBytes int64) *DataSpace {
	return NewDataSpace(chunkBytes, ds.Arrays...)
}

// String summarizes the data space.
func (ds *DataSpace) String() string {
	return fmt.Sprintf("dataspace: %d arrays, %d bytes, %d chunks of %d bytes",
		len(ds.Arrays), ds.TotalBytes(), ds.numChunks, ds.ChunkBytes)
}
