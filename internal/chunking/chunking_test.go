package chunking

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestArrayBasics(t *testing.T) {
	a := Array{Name: "A", Dims: []int64{4, 5}, ElemSize: 8}
	if a.NumElems() != 20 {
		t.Fatalf("NumElems = %d", a.NumElems())
	}
	if a.Bytes() != 160 {
		t.Fatalf("Bytes = %d", a.Bytes())
	}
}

func TestLinearIndexRowMajor(t *testing.T) {
	a := Array{Name: "A", Dims: []int64{3, 4}, ElemSize: 4}
	if got := a.LinearIndex([]int64{0, 0}); got != 0 {
		t.Fatalf("(0,0) -> %d", got)
	}
	if got := a.LinearIndex([]int64{1, 2}); got != 6 {
		t.Fatalf("(1,2) -> %d, want 6", got)
	}
	if got := a.LinearIndex([]int64{2, 3}); got != 11 {
		t.Fatalf("(2,3) -> %d, want 11", got)
	}
}

func TestLinearIndexClamps(t *testing.T) {
	a := Array{Name: "A", Dims: []int64{3, 4}, ElemSize: 4}
	if got := a.LinearIndex([]int64{-1, 0}); got != 0 {
		t.Fatalf("clamp low -> %d", got)
	}
	if got := a.LinearIndex([]int64{5, 9}); got != 11 {
		t.Fatalf("clamp high -> %d, want 11", got)
	}
}

func TestLinearIndexArityPanics(t *testing.T) {
	a := Array{Name: "A", Dims: []int64{3}, ElemSize: 4}
	defer func() {
		if recover() == nil {
			t.Fatal("arity mismatch did not panic")
		}
	}()
	a.LinearIndex([]int64{1, 2})
}

func TestDataSpaceChunkNumbering(t *testing.T) {
	// Two arrays; per Figure 4, chunks are per-array and numbered across
	// array boundaries contiguously.
	a := Array{Name: "A", Dims: []int64{10}, ElemSize: 8}   // 80 B -> 3 chunks of 32
	b := Array{Name: "B", Dims: []int64{4, 2}, ElemSize: 4} // 32 B -> 1 chunk
	ds := NewDataSpace(32, a, b)
	if ds.NumChunks() != 4 {
		t.Fatalf("NumChunks = %d, want 4", ds.NumChunks())
	}
	if ds.ArrayChunks(0) != 3 || ds.ArrayChunks(1) != 1 {
		t.Fatal("per-array chunk counts wrong")
	}
	if ds.ChunkBase(0) != 0 || ds.ChunkBase(1) != 3 {
		t.Fatal("chunk bases wrong")
	}
	if got := ds.ChunkOf(0, []int64{0}); got != 0 {
		t.Fatalf("A[0] -> chunk %d", got)
	}
	if got := ds.ChunkOf(0, []int64{4}); got != 1 { // byte 32
		t.Fatalf("A[4] -> chunk %d, want 1", got)
	}
	if got := ds.ChunkOf(0, []int64{9}); got != 2 {
		t.Fatalf("A[9] -> chunk %d, want 2", got)
	}
	if got := ds.ChunkOf(1, []int64{0, 0}); got != 3 {
		t.Fatalf("B[0,0] -> chunk %d, want 3 (no chunk spans arrays)", got)
	}
}

func TestChunkOfElem(t *testing.T) {
	ds := NewDataSpace(16, Array{Name: "A", Dims: []int64{10}, ElemSize: 8})
	if got := ds.ChunkOfElem(0, 0); got != 0 {
		t.Fatalf("elem 0 -> %d", got)
	}
	if got := ds.ChunkOfElem(0, 2); got != 1 {
		t.Fatalf("elem 2 -> %d, want 1", got)
	}
	if got := ds.ChunkOfElem(0, -5); got != 0 {
		t.Fatalf("clamped low -> %d", got)
	}
	if got := ds.ChunkOfElem(0, 99); got != ds.NumChunks()-1 {
		t.Fatalf("clamped high -> %d", got)
	}
}

func TestArrayOfChunk(t *testing.T) {
	ds := NewDataSpace(32,
		Array{Name: "A", Dims: []int64{10}, ElemSize: 8},
		Array{Name: "B", Dims: []int64{8}, ElemSize: 4},
	)
	if ds.ArrayOfChunk(0) != 0 || ds.ArrayOfChunk(2) != 0 || ds.ArrayOfChunk(3) != 1 {
		t.Fatal("ArrayOfChunk wrong")
	}
}

func TestArrayOfChunkPanics(t *testing.T) {
	ds := NewDataSpace(32, Array{Name: "A", Dims: []int64{4}, ElemSize: 8})
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range chunk did not panic")
		}
	}()
	ds.ArrayOfChunk(99)
}

func TestRaggedLastChunk(t *testing.T) {
	// 72 bytes with 32-byte chunks -> 3 chunks (last one partial).
	ds := NewDataSpace(32, Array{Name: "A", Dims: []int64{9}, ElemSize: 8})
	if ds.NumChunks() != 3 {
		t.Fatalf("NumChunks = %d, want 3", ds.NumChunks())
	}
	if got := ds.ChunkOf(0, []int64{8}); got != 2 {
		t.Fatalf("last element -> chunk %d", got)
	}
}

func TestRescale(t *testing.T) {
	ds := NewDataSpace(64, Array{Name: "A", Dims: []int64{32}, ElemSize: 8})
	half := ds.Rescale(32)
	if half.NumChunks() != ds.NumChunks()*2 {
		t.Fatalf("Rescale: %d vs %d chunks", half.NumChunks(), ds.NumChunks())
	}
	if ds.NumChunks() != 4 {
		t.Fatal("original mutated by Rescale")
	}
}

func TestNewDataSpaceValidation(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero chunk": func() { NewDataSpace(0, Array{Name: "A", Dims: []int64{1}, ElemSize: 1}) },
		"no arrays":  func() { NewDataSpace(8) },
		"zero elem":  func() { NewDataSpace(8, Array{Name: "A", Dims: []int64{1}, ElemSize: 0}) },
		"empty dims": func() { NewDataSpace(8, Array{Name: "A", Dims: []int64{0}, ElemSize: 4}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestTotalBytes(t *testing.T) {
	ds := NewDataSpace(32,
		Array{Name: "A", Dims: []int64{10}, ElemSize: 8},
		Array{Name: "B", Dims: []int64{4}, ElemSize: 4},
	)
	if ds.TotalBytes() != 96 {
		t.Fatalf("TotalBytes = %d", ds.TotalBytes())
	}
}

// Property: chunk ids are within the owning array's range, monotone in the
// element index, and ChunkOf agrees with ChunkOfElem.
func TestPropertyChunkMapping(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		dims := []int64{int64(1 + r.Intn(8)), int64(1 + r.Intn(8))}
		elem := int64(1 + r.Intn(8))
		chunk := int64(1 + r.Intn(64))
		a := Array{Name: "A", Dims: dims, ElemSize: elem}
		b := Array{Name: "B", Dims: []int64{int64(1 + r.Intn(16))}, ElemSize: elem}
		ds := NewDataSpace(chunk, a, b)
		prev := -1
		for e := int64(0); e < a.NumElems(); e++ {
			subs := []int64{e / dims[1], e % dims[1]}
			c1 := ds.ChunkOf(0, subs)
			c2 := ds.ChunkOfElem(0, e)
			if c1 != c2 {
				return false
			}
			if c1 < 0 || c1 >= ds.ChunkBase(1) {
				return false
			}
			if c1 < prev {
				return false
			}
			prev = c1
		}
		// Array B's chunks start exactly at ChunkBase(1).
		return ds.ChunkOfElem(1, 0) == ds.ChunkBase(1) &&
			ds.ArrayOfChunk(ds.NumChunks()-1) == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: halving the chunk size never decreases the chunk count, and
// every byte of every array is covered (sum of per-array chunks × size >=
// total bytes).
func TestPropertyRescaleCoverage(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ds := NewDataSpace(int64(2+2*r.Intn(32)),
			Array{Name: "A", Dims: []int64{int64(1 + r.Intn(50))}, ElemSize: int64(1 + r.Intn(16))})
		half := ds.Rescale(ds.ChunkBytes / 2)
		if half.NumChunks() < ds.NumChunks() {
			return false
		}
		return int64(ds.NumChunks())*ds.ChunkBytes >= ds.TotalBytes()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
