//go:build !race

package race

// Enabled is true when the binary was built with -race.
const Enabled = false
