//go:build race

// Package race reports whether the race detector is compiled in, mirroring
// the runtime's internal/race. The zero-alloc steady-state gates skip under
// it: the race-mode sync.Pool deliberately drops Puts and misses Gets to
// shake out races, so "warm pool ⇒ zero allocations" cannot hold. The
// dedicated alloc gate (ci.sh and the alloc-gate CI job) runs without
// -race and keeps the assertions armed.
package race

// Enabled is true when the binary was built with -race.
const Enabled = true
