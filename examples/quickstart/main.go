// Quickstart: map a small out-of-core loop nest onto a 3-level storage
// cache hierarchy with each of the four schemes and compare the simulated
// metrics.
//
// The program models the classic situation from the paper's introduction: a
// parallel loop over a disk-resident array where the default block mapping
// makes clients that share storage caches work on unrelated data
// (destructive sharing), while the cache-hierarchy-aware mapping co-locates
// iterations that touch the same data chunks (constructive sharing).
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"os"
	"text/tabwriter"

	cachemap "repro"
)

func main() {
	// Platform: 8 clients, 4 I/O nodes, 2 storage nodes; every node holds a
	// small storage cache (capacities in data chunks).
	tree := cachemap.NewLayeredHierarchy(
		cachemap.LayerSpec{Count: 2, CacheChunks: 96, Label: "SN"},
		cachemap.LayerSpec{Count: 4, CacheChunks: 48, Label: "IO"},
		cachemap.LayerSpec{Count: 8, CacheChunks: 24, Label: "CN"},
	)

	// A 4-pass sweep over a disk-resident array A (coarse 64 B records,
	// 256 B data chunks), reading a sliding window and updating a result
	// array B in place. Iterations (t, i) and (t', i) touch the same chunks,
	// so there is plenty of sharing for the mapper to exploit.
	const passes, n = 4, 512
	data := cachemap.NewDataSpace(256,
		cachemap.Array{Name: "A", Dims: []int64{n + 64}, ElemSize: 64},
		cachemap.Array{Name: "B", Dims: []int64{n}, ElemSize: 64},
	)
	nest := cachemap.NewNest("sweep", []int64{0, 0}, []int64{passes - 1, n - 1})
	refs := []cachemap.Ref{
		cachemap.SimpleRef(0, 2, []int{1}, []int64{0}, cachemap.Read),  // A[i]
		cachemap.SimpleRef(0, 2, []int{1}, []int64{64}, cachemap.Read), // A[i+64] (neighbour window)
		cachemap.SimpleRef(1, 2, []int{1}, []int64{0}, cachemap.Write), // B[i]
	}
	prog := cachemap.Program{Nest: nest, Refs: refs, Data: data}

	fmt.Printf("workload: %d iterations over %d data chunks, platform: %d clients\n\n",
		nest.Size(), data.NumChunks(), tree.NumClients())

	params := cachemap.DefaultSimParams()
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "scheme\tL1 miss\tL2 miss\tL3 miss\tdisk reads\tI/O (ms)\texec (ms)")
	for _, scheme := range cachemap.Schemes() {
		m, err := cachemap.MapAndSimulate(scheme, prog, tree, params)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(tw, "%s\t%.1f%%\t%.1f%%\t%.1f%%\t%d\t%.0f\t%.0f\n",
			scheme, m.MissRateL(1)*100, m.MissRateL(2)*100, m.MissRateL(3)*100,
			m.DiskReads, m.IOLatencyMS(), m.ExecTimeMS())
	}
	tw.Flush()

	fmt.Println("\nThe inter-processor schemes cluster iterations by shared data chunks")
	fmt.Println("and assign clusters along the cache hierarchy (Figure 5 of the paper);")
	fmt.Println("inter-sched additionally orders each client's chunks for reuse (Figure 15).")
}
