// Stencil3d: an out-of-core 3-D plane stencil (the access-pattern class of
// the paper's apsi pollutant model) mapped with the cache-hierarchy-aware
// scheme across several storage topologies — a miniature version of the
// paper's Figure 12 sensitivity study.
//
// The workload sweeps a (plane, cell) grid several times, reading each
// plane and its lower neighbour and updating it in place. Different
// (clients : I/O nodes : storage nodes) ratios change how many clients
// share each cache, and with it the benefit of hierarchy-aware mapping.
//
// Run with: go run ./examples/stencil3d
package main

import (
	"fmt"
	"os"
	"text/tabwriter"

	cachemap "repro"
)

const (
	passes = 3
	planes = 16
	cells  = 64
)

func program() cachemap.Program {
	data := cachemap.NewDataSpace(512,
		cachemap.Array{Name: "P", Dims: []int64{planes, cells}, ElemSize: 256},
		cachemap.Array{Name: "K", Dims: []int64{cells}, ElemSize: 256},
	)
	nest := cachemap.NewNest("stencil3d", []int64{0, 1, 0}, []int64{passes - 1, planes - 1, cells - 1})
	refs := []cachemap.Ref{
		cachemap.SimpleRef(0, 3, []int{1, 2}, []int64{0, 0}, cachemap.Read),  // P[p,c]
		cachemap.SimpleRef(0, 3, []int{1, 2}, []int64{-1, 0}, cachemap.Read), // P[p-1,c]
		cachemap.SimpleRef(0, 3, []int{1, 2}, []int64{0, 0}, cachemap.Write), // P[p,c] (in-place)
		cachemap.SimpleRef(1, 3, []int{2}, []int64{0}, cachemap.Read),        // K[c] (coefficients)
	}
	return cachemap.Program{Nest: nest, Refs: refs, Data: data}
}

func main() {
	prog := program()
	deps := cachemap.AnalyzeDependences(prog.Nest, prog.Refs)
	fmt.Printf("stencil: %d iterations, %d data chunks, %d dependences\n\n",
		prog.Nest.Size(), prog.Data.NumChunks(), len(deps))

	topologies := []struct{ w, x, y int }{
		{16, 8, 4}, // 2 clients per I/O cache
		{16, 4, 4}, // 4 clients per I/O cache
		{16, 4, 2}, // 4 clients per I/O cache, 2 I/O per storage cache
		{32, 8, 4}, // twice the clients on the same I/O subsystem
	}
	params := cachemap.DefaultSimParams()

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "topology (w,x,y)\toriginal I/O (ms)\tinter I/O (ms)\tnormalized\tL1 miss orig→inter")
	for _, topo := range topologies {
		tree := func() *cachemap.Hierarchy {
			return cachemap.NewLayeredHierarchy(
				cachemap.LayerSpec{Count: topo.y, CacheChunks: 16, Label: "SN"},
				cachemap.LayerSpec{Count: topo.x, CacheChunks: 8, Label: "IO"},
				cachemap.LayerSpec{Count: topo.w, CacheChunks: 4, Label: "CN"},
			)
		}
		orig, err := cachemap.MapAndSimulate(cachemap.Original, prog, tree(), params)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		inter, err := cachemap.MapAndSimulate(cachemap.InterProcessor, prog, tree(), params)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(tw, "(%d,%d,%d)\t%.0f\t%.0f\t%.2f\t%.1f%% → %.1f%%\n",
			topo.w, topo.x, topo.y,
			orig.IOLatencyMS(), inter.IOLatencyMS(),
			inter.IOLatencyMS()/orig.IOLatencyMS(),
			orig.MissRateL(1)*100, inter.MissRateL(1)*100)
	}
	tw.Flush()
	fmt.Println("\nNormalized < 1 means the hierarchy-aware mapping beats the block mapping.")
}
