// Customtopo: the distribution algorithm is topology-generic — it works on
// any storage cache hierarchy tree, not just the uniform 3-level
// client/I-O/storage layout. This example builds a deep, non-uniform,
// 4-level hierarchy (two unequal racks, one with an extra burst-buffer
// layer) and shows that (a) the mapper balances work proportionally to each
// subtree's client count, and (b) iterations sharing data still gravitate
// to clients with cache affinity.
//
// Run with: go run ./examples/customtopo
package main

import (
	"fmt"
	"os"

	cachemap "repro"
)

// buildTree constructs:
//
//	SN (storage, 64-chunk cache)
//	├── RACK0 (32)                 — big rack with a burst-buffer level
//	│   ├── BB0 (16): c0 c1 c2     — 3 clients (8-chunk caches)
//	│   └── BB1 (16): c3 c4 c5     — 3 clients
//	└── RACK1 (32)                 — small rack, clients attach directly
//	    ├── c6
//	    └── c7
func buildTree() *cachemap.Hierarchy {
	client := func(name string) *cachemap.HierarchyNode {
		return &cachemap.HierarchyNode{Label: name, CacheChunks: 8}
	}
	// RACK1's clients sit one level higher than RACK0's; give them an
	// intermediate pass-through node so all leaves share one depth.
	bb := func(name string, kids ...*cachemap.HierarchyNode) *cachemap.HierarchyNode {
		return &cachemap.HierarchyNode{Label: name, CacheChunks: 16, Children: kids}
	}
	rack0 := &cachemap.HierarchyNode{Label: "RACK0", CacheChunks: 32, Children: []*cachemap.HierarchyNode{
		bb("BB0", client("c0"), client("c1"), client("c2")),
		bb("BB1", client("c3"), client("c4"), client("c5")),
	}}
	rack1 := &cachemap.HierarchyNode{Label: "RACK1", CacheChunks: 32, Children: []*cachemap.HierarchyNode{
		bb("BB2", client("c6")),
		bb("BB3", client("c7")),
	}}
	return cachemap.BuildHierarchy(&cachemap.HierarchyNode{
		Label: "SN", CacheChunks: 64, Children: []*cachemap.HierarchyNode{rack0, rack1},
	})
}

func main() {
	tree := buildTree()
	fmt.Print(tree)
	fmt.Println()

	// A 3-pass banded sweep: iterations i and i+96 read the same chunks,
	// creating long-range sharing the mapper can co-locate.
	const passes, n = 3, 768
	data := cachemap.NewDataSpace(512,
		cachemap.Array{Name: "A", Dims: []int64{n + 96}, ElemSize: 128},
		cachemap.Array{Name: "R", Dims: []int64{n}, ElemSize: 128},
	)
	nest := cachemap.NewNest("banded", []int64{0, 0}, []int64{passes - 1, n - 1})
	refs := []cachemap.Ref{
		cachemap.SimpleRef(0, 2, []int{1}, []int64{0}, cachemap.Read),  // A[i]
		cachemap.SimpleRef(0, 2, []int{1}, []int64{96}, cachemap.Read), // A[i+96]
		cachemap.SimpleRef(1, 2, []int{1}, []int64{0}, cachemap.Write), // R[i]
	}
	prog := cachemap.Program{Nest: nest, Refs: refs, Data: data}

	res, err := cachemap.Map(cachemap.InterProcessor, prog, cachemap.Config{Tree: tree})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Println("per-client assignment (weighted by subtree size):")
	var rack0Iters, rack1Iters int64
	for ci, blocks := range res.Assignment {
		var iters int64
		for _, b := range blocks {
			iters += b.Count()
		}
		fmt.Printf("  client %d (%s): %d chunks, %d iterations\n",
			ci, tree.Client(ci).Label, len(blocks), iters)
		if ci < 6 {
			rack0Iters += iters
		} else {
			rack1Iters += iters
		}
	}
	fmt.Printf("rack0 (6 clients): %d iterations; rack1 (2 clients): %d iterations\n",
		rack0Iters, rack1Iters)
	fmt.Printf("(ideal proportional split: %d vs %d)\n\n", nest.Size()*6/8, nest.Size()*2/8)

	m, err := cachemap.Simulate(tree, prog, res.Assignment, cachemap.DefaultSimParams())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	orig, err := cachemap.MapAndSimulate(cachemap.Original, prog, buildTree(), cachemap.DefaultSimParams())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("original: I/O %.0f ms, disk reads %d\n", orig.IOLatencyMS(), orig.DiskReads)
	fmt.Printf("inter:    I/O %.0f ms, disk reads %d\n", m.IOLatencyMS(), m.DiskReads)
}
