// Wavefront: mapping a loop nest whose iterations carry a genuine data
// dependence (Section 5.4 of the paper). The kernel updates a disk-resident
// line in place with a 48-element lag:
//
//	for t = 0..2 { for i = 48..N-1 { A[i] = g(A[i-48], B[i]) } }
//
// Both Section 5.4 strategies are demonstrated:
//
//   - merge: dependent iteration chunks fuse into super-chunks (infinite
//     edge weight) so no inter-processor synchronization is needed;
//   - sync: dependences are treated as ordinary data sharing, and the
//     mapper reports how many dependence edges cross clients (each would
//     need a runtime synchronization).
//
// Run with: go run ./examples/wavefront
package main

import (
	"fmt"
	"os"
	"text/tabwriter"

	cachemap "repro"
)

func main() {
	const passes, n, lag = 3, 1024, 48
	data := cachemap.NewDataSpace(512,
		cachemap.Array{Name: "A", Dims: []int64{n}, ElemSize: 128},
		cachemap.Array{Name: "B", Dims: []int64{n}, ElemSize: 128},
	)
	nest := cachemap.NewNest("wavefront", []int64{0, lag}, []int64{passes - 1, n - 1})
	refs := []cachemap.Ref{
		cachemap.SimpleRef(0, 2, []int{1}, []int64{0}, cachemap.Write),   // A[i]
		cachemap.SimpleRef(0, 2, []int{1}, []int64{-lag}, cachemap.Read), // A[i-48]
		cachemap.SimpleRef(1, 2, []int{1}, []int64{0}, cachemap.Read),    // B[i]
	}
	prog := cachemap.Program{Nest: nest, Refs: refs, Data: data}

	deps := cachemap.AnalyzeDependences(prog.Nest, prog.Refs)
	fmt.Printf("wavefront: %d iterations, %d chunks, dependences:\n", nest.Size(), data.NumChunks())
	for _, d := range deps {
		fmt.Printf("  refs %d->%d distance %s\n", d.Src, d.Dst, d)
	}
	fmt.Println()

	tree := func() *cachemap.Hierarchy { return cachemap.NewHierarchy(16, 8, 4, 8) }
	params := cachemap.DefaultSimParams()

	orig, err := cachemap.MapAndSimulate(cachemap.Original, prog, tree(), params)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "strategy\tI/O (ms)\tvs original\tsync edges")
	fmt.Fprintf(tw, "original\t%.0f\t1.00\t—\n", orig.IOLatencyMS())
	for _, mode := range []struct {
		name string
		mode cachemap.DepMode
	}{{"inter+merge", cachemap.DepMerge}, {"inter+sync", cachemap.DepSync}} {
		cfg := cachemap.Config{Tree: tree(), DepMode: mode.mode}
		res, err := cachemap.Map(cachemap.InterProcessor, prog, cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		m, err := cachemap.Simulate(tree(), prog, res.Assignment, params)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		sync := "0"
		if mode.mode == cachemap.DepSync {
			sync = fmt.Sprintf("%d", res.SyncEdges)
		}
		fmt.Fprintf(tw, "%s\t%.0f\t%.2f\t%s\n",
			mode.name, m.IOLatencyMS(), m.IOLatencyMS()/orig.IOLatencyMS(), sync)
	}
	tw.Flush()
	fmt.Println("\nmerge serializes dependent chunks on one client (no synchronization);")
	fmt.Println("sync keeps parallelism and counts the cross-client dependence edges.")
}
