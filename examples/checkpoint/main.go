// Checkpoint: a read-compute-checkpoint workload (the FLASH/madbench2
// class the paper's introduction motivates): every sweep reads a
// disk-resident state matrix — including a transposed operand — and writes
// a checkpoint file. The example contrasts the four mapping schemes, the
// write-handling policies of the simulated storage stack, and the effect
// of the α/β weights of the scheduling enhancement.
//
// Run with: go run ./examples/checkpoint
package main

import (
	"fmt"
	"os"
	"text/tabwriter"

	cachemap "repro"
)

const (
	sweeps = 4
	blocks = 16 // the state is a blocks×blocks panel matrix
)

func program() cachemap.Program {
	data := cachemap.NewDataSpace(512,
		cachemap.Array{Name: "S", Dims: []int64{blocks, blocks}, ElemSize: 512},    // state
		cachemap.Array{Name: "CKPT", Dims: []int64{blocks, blocks}, ElemSize: 512}, // checkpoint
	)
	nest := cachemap.NewNest("checkpoint", []int64{0, 0, 0}, []int64{sweeps - 1, blocks - 1, blocks - 1})
	refs := []cachemap.Ref{
		cachemap.SimpleRef(0, 3, []int{1, 2}, []int64{0, 0}, cachemap.Read),  // S[i,j]
		cachemap.SimpleRef(0, 3, []int{2, 1}, []int64{0, 0}, cachemap.Read),  // S[j,i] (transposed operand)
		cachemap.SimpleRef(1, 3, []int{1, 2}, []int64{0, 0}, cachemap.Write), // CKPT[i,j]
	}
	return cachemap.Program{Nest: nest, Refs: refs, Data: data}
}

func tree() *cachemap.Hierarchy { return cachemap.NewHierarchy(16, 8, 4, 8) }

func main() {
	prog := program()
	fmt.Printf("checkpoint workload: %d iterations, %d data chunks\n\n",
		prog.Nest.Size(), prog.Data.NumChunks())

	// Part 1: the four schemes.
	params := cachemap.DefaultSimParams()
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "scheme\tL1 miss\tdisk reads\twritebacks\tI/O (ms)\texec (ms)")
	for _, scheme := range cachemap.Schemes() {
		m, err := cachemap.MapAndSimulate(scheme, prog, tree(), params)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(tw, "%s\t%.1f%%\t%d\t%d\t%.0f\t%.0f\n",
			scheme, m.MissRateL(1)*100, m.DiskReads, m.DiskWritebacks,
			m.IOLatencyMS(), m.ExecTimeMS())
	}
	tw.Flush()

	// Part 2: write-handling policies under the inter-processor mapping.
	fmt.Println("\nwrite policies (inter-processor mapping):")
	tw = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "policy\tdisk reads\twritebacks\tI/O (ms)")
	for _, wp := range []struct {
		name   string
		policy cachemap.WritePolicy
	}{
		{"allocate-no-fetch", 0},
		{"allocate-fetch", 1},
		{"write-through", 2},
	} {
		p := cachemap.DefaultSimParams()
		p.Writes = wp.policy
		m, err := cachemap.MapAndSimulate(cachemap.InterProcessor, prog, tree(), p)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%.0f\n", wp.name, m.DiskReads, m.DiskWritebacks, m.IOLatencyMS())
	}
	tw.Flush()

	// Part 3: α/β weights of the Figure 15 scheduler.
	fmt.Println("\nscheduler weights (inter-sched):")
	tw = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "alpha\tbeta\tI/O (ms)\tL1 miss")
	for _, w := range [][2]float64{{0, 1}, {0.5, 0.5}, {1, 0}} {
		cfg := cachemap.Config{Tree: tree()}
		cfg.Schedule.Alpha, cfg.Schedule.Beta = w[0], w[1]
		res, err := cachemap.Map(cachemap.InterProcessorSched, prog, cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		m, err := cachemap.Simulate(tree(), prog, res.Assignment, params)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(tw, "%.2f\t%.2f\t%.0f\t%.1f%%\n", w[0], w[1], m.IOLatencyMS(), m.MissRateL(1)*100)
	}
	tw.Flush()
}
