package cachemap

import (
	"runtime/debug"
	"testing"

	"repro/internal/race"
)

// TestAllocPlanCacheHit gates the steady-state allocation cost of a warm
// plan-cache hit served in process (the ci.sh alloc-gate job runs every
// TestAlloc* with GOGC=off; GC is also disabled here so sync.Pool eviction
// cannot fake a regression under a default run).
//
// The hit path is not zero-alloc by design: its documented constant is the
// two content-hash JSON encodings (the plan key and the workload-only stale
// key), the job struct, and the response struct — roughly a dozen objects.
// The memoized topology/workload spec caches (internal/server/api.go) keep
// everything else off the path; before them a hit cost ~160 objects. The
// bound holds headroom for encoder internals, not for re-deriving specs.
func TestAllocPlanCacheHit(t *testing.T) {
	if race.Enabled {
		t.Skip("race-mode sync.Pool drops Puts by design; the alloc gate runs without -race")
	}
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	svc := NewService(ServiceConfig{})
	req := MapRequest{
		Workload: WorkloadSpec{Synth: &SynthSpec{
			Name:    "allocgate",
			Passes:  4,
			Extent:  2048,
			Streams: []StreamSpec{{Stride: 1}, {Stride: 1, Offset: 32}},
		}},
		Topology: "4/8/16@16,8,4",
		Scheme:   "inter",
	}
	if _, err := svc.ComputePlan(req); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		mr, err := svc.ComputePlan(req)
		if err != nil {
			t.Fatal(err)
		}
		if !mr.Cached {
			t.Fatal("warm request missed the plan cache")
		}
	})
	const bound = 20 // measured 11; headroom for encoder internals only
	if allocs > bound {
		t.Fatalf("warm plan-cache hit allocates %v objects/op, want <= %d", allocs, bound)
	}
}
